//! Property tests: both heap implementations must behave exactly like a sorted
//! sequence of their inputs.

use proptest::prelude::*;
use relacc_heap::{PairingHeap, RankedList, ScoredHeap};

proptest! {
    /// PairingHeap pops every pushed key in non-increasing order.
    #[test]
    fn pairing_heap_sorts(keys in prop::collection::vec(-1000i64..1000, 0..200)) {
        let mut heap = PairingHeap::new();
        for (i, k) in keys.iter().enumerate() {
            heap.push(*k, i);
        }
        prop_assert_eq!(heap.len(), keys.len());
        let mut got: Vec<i64> = Vec::new();
        let mut h = heap;
        while let Some((k, _)) = h.pop() {
            got.push(k);
        }
        let mut want = keys.clone();
        want.sort_by(|a, b| b.cmp(a));
        prop_assert_eq!(got, want);
    }

    /// Melding two heaps pops the multiset union in order.
    #[test]
    fn pairing_heap_meld(a in prop::collection::vec(-100i64..100, 0..50),
                         b in prop::collection::vec(-100i64..100, 0..50)) {
        let mut ha: PairingHeap<i64, ()> = a.iter().map(|&k| (k, ())).collect();
        let hb: PairingHeap<i64, ()> = b.iter().map(|&k| (k, ())).collect();
        ha.meld(hb);
        let got: Vec<i64> = ha.into_sorted_vec().into_iter().map(|(k, _)| k).collect();
        let mut want = a.clone();
        want.extend_from_slice(&b);
        want.sort_by(|x, y| y.cmp(x));
        prop_assert_eq!(got, want);
    }

    /// ScoredHeap (linear heapify) pops scores in non-increasing order and its
    /// pop counter matches the number of pops.
    #[test]
    fn scored_heap_sorts(scores in prop::collection::vec(-1e6f64..1e6, 0..200)) {
        let mut heap: ScoredHeap<usize> =
            scores.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut got = Vec::new();
        while let Some(entry) = heap.pop() {
            got.push(entry.score);
        }
        prop_assert_eq!(heap.pop_count(), scores.len());
        let mut want = scores.clone();
        want.sort_by(|a, b| b.total_cmp(a));
        prop_assert_eq!(got, want);
    }

    /// RankedList agrees with ScoredHeap on the order of scores.
    #[test]
    fn ranked_list_matches_heap(scores in prop::collection::vec(-1e3f64..1e3, 0..100)) {
        let list: RankedList<usize> = scores.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut heap: ScoredHeap<usize> = scores.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        for rank in 0..list.len() {
            let from_list = list.get(rank).unwrap().score;
            let from_heap = heap.pop().unwrap().score;
            prop_assert_eq!(from_list, from_heap);
        }
        prop_assert!(heap.is_empty());
    }

    /// Interleaved push/pop keeps the max-heap property: every pop returns the
    /// maximum of what is currently inside.
    #[test]
    fn interleaved_operations(ops in prop::collection::vec((any::<bool>(), -500i64..500), 0..200)) {
        let mut heap = PairingHeap::new();
        let mut reference: Vec<i64> = Vec::new();
        for (is_push, key) in ops {
            if is_push || reference.is_empty() {
                heap.push(key, ());
                reference.push(key);
            } else {
                let (popped, _) = heap.pop().unwrap();
                let max = *reference.iter().max().unwrap();
                prop_assert_eq!(popped, max);
                let idx = reference.iter().position(|&x| x == max).unwrap();
                reference.swap_remove(idx);
            }
            prop_assert_eq!(heap.len(), reference.len());
        }
    }
}
