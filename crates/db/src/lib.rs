//! # relacc-db
//!
//! **Deprecated facade.**  Database-level relative accuracy for *"Determining
//! the Relative Accuracy of Attributes"* (SIGMOD 2013) used to live here; the
//! implementation has since been split:
//!
//! * entity resolution ([`similarity`], [`blocking`], [`resolve`]) moved to
//!   the dependency-light `relacc-resolve` crate (re-exported here verbatim);
//! * the batch repair pipeline ([`batch`]) moved to `relacc-engine`, which
//!   compiles the rules and master data once per workload (`ChasePlan`) and
//!   schedules entities dynamically over a worker pool — [`batch`] is now a
//!   thin shim that delegates to [`relacc_engine::BatchEngine`].
//!
//! The resolution surface (`resolve_relation`, `ResolveConfig`, blocking and
//! similarity) is unchanged.  [`batch::repair_database`] keeps its signature
//! but now returns the engine's [`batch::RelationRepair`] (report + repaired
//! relation + resolution output) instead of the old flat report, so callers
//! reach the per-entity results as `repair.report.entities`.
//!
//! **Retirement step 3 (final):** the crate has left the workspace
//! `default-members` — root builds and tests no longer compile it on their
//! own, and the differential tests pin the engine path directly (see
//! `README.md`).  It stays a member so explicit `-p relacc-db` builds keep
//! working for out-of-tree callers.
//!
//! **Retirement step 2:** every remaining item of this facade is now marked
//! `#[deprecated]` with its migration target.  The mapping is mechanical —
//! each re-export names the same item in `relacc-resolve`, and the batch
//! shim maps onto [`relacc_engine::BatchEngine`]:
//!
//! | was | use instead |
//! |---|---|
//! | `relacc_db::resolve_relation`, `ResolveConfig`, … | the same names in `relacc_resolve` |
//! | `relacc_db::repair_database(_, _, _, &config)` | [`relacc_engine::BatchEngine::repair_relation`] |
//! | `relacc_db::BatchConfig` | [`relacc_engine::BatchEngine`] builder methods |
//!
//! Migrated example (what the old doctest did, on the maintained crates):
//!
//! ```
//! use relacc_resolve::{resolve_relation, ResolveConfig};
//! use relacc_store::Relation;
//! use relacc_model::{DataType, Schema, Value};
//!
//! let schema = Schema::builder("stat")
//!     .attr("name", DataType::Text)
//!     .attr("rnds", DataType::Int)
//!     .build();
//! let relation = Relation::from_rows(schema, vec![
//!     vec![Value::text("Michael Jordan"), Value::Int(16)],
//!     vec![Value::text("Michael  Jordan"), Value::Int(27)],
//!     vec![Value::text("Scottie Pippen"), Value::Int(27)],
//! ]).unwrap();
//! let resolved = resolve_relation(&relation, &ResolveConfig::on_attrs(vec!["name".into()]));
//! assert_eq!(resolved.entities.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;

#[deprecated(
    since = "0.2.0",
    note = "use the `relacc_resolve::blocking`, `relacc_resolve::resolve` and \
            `relacc_resolve::similarity` modules directly"
)]
pub use relacc_resolve::{blocking, resolve, similarity};

#[allow(deprecated)]
pub use batch::{
    repair_database, BatchConfig, BatchReport, EntityOutcome, EntityResult, RelationRepair,
    RepairSkip, RepairedEntity,
};

#[deprecated(
    since = "0.2.0",
    note = "use the same names from `relacc_resolve` (re-exported at its crate root)"
)]
pub use relacc_resolve::{blocking_key, Blocker, BlockingStrategy};

#[deprecated(
    since = "0.2.0",
    note = "use the same names from `relacc_resolve` (re-exported at its crate root)"
)]
pub use relacc_resolve::{resolve_relation, MatchDecision, ResolveConfig, ResolvedEntities};

#[deprecated(
    since = "0.2.0",
    note = "use the same names from `relacc_resolve` (re-exported at its crate root)"
)]
pub use relacc_resolve::{jaccard_tokens, levenshtein, normalized_levenshtein, record_similarity};
