//! # relacc-db
//!
//! **Deprecated facade.**  Database-level relative accuracy for *"Determining
//! the Relative Accuracy of Attributes"* (SIGMOD 2013) used to live here; the
//! implementation has since been split:
//!
//! * entity resolution ([`similarity`], [`blocking`], [`resolve`]) moved to
//!   the dependency-light `relacc-resolve` crate (re-exported here verbatim);
//! * the batch repair pipeline ([`batch`]) moved to `relacc-engine`, which
//!   compiles the rules and master data once per workload (`ChasePlan`) and
//!   schedules entities dynamically over a worker pool — [`batch`] is now a
//!   thin shim that delegates to [`relacc_engine::BatchEngine`].
//!
//! The resolution surface (`resolve_relation`, `ResolveConfig`, blocking and
//! similarity) is unchanged.  [`batch::repair_database`] keeps its signature
//! but now returns the engine's [`batch::RelationRepair`] (report + repaired
//! relation + resolution output) instead of the old flat report, so callers
//! reach the per-entity results as `repair.report.entities`.  New code should
//! depend on `relacc-resolve` and `relacc-engine` directly.
//!
//! ```
//! use relacc_db::{resolve_relation, ResolveConfig};
//! use relacc_store::Relation;
//! use relacc_model::{DataType, Schema, Value};
//!
//! let schema = Schema::builder("stat")
//!     .attr("name", DataType::Text)
//!     .attr("rnds", DataType::Int)
//!     .build();
//! let relation = Relation::from_rows(schema, vec![
//!     vec![Value::text("Michael Jordan"), Value::Int(16)],
//!     vec![Value::text("Michael  Jordan"), Value::Int(27)],
//!     vec![Value::text("Scottie Pippen"), Value::Int(27)],
//! ]).unwrap();
//! let resolved = resolve_relation(&relation, &ResolveConfig::on_attrs(vec!["name".into()]));
//! assert_eq!(resolved.entities.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub use relacc_resolve::{blocking, resolve, similarity};

#[allow(deprecated)]
pub use batch::{
    repair_database, BatchConfig, BatchReport, EntityOutcome, EntityResult, RelationRepair,
    RepairSkip, RepairedEntity,
};
pub use blocking::{blocking_key, Blocker, BlockingStrategy};
pub use resolve::{resolve_relation, MatchDecision, ResolveConfig, ResolvedEntities};
pub use similarity::{jaccard_tokens, levenshtein, normalized_levenshtein, record_similarity};
