//! Database-level accuracy improvement: run the chase (and, when needed, the
//! top-k candidate search) over every entity of a relation.
//!
//! The paper's framework works one entity instance at a time; its conclusion
//! lists "improving the accuracy of data in a database, which is often much
//! larger than entity instances" as ongoing work.  This module provides that
//! batch layer: resolve → chase each entity → collect deduced targets → emit a
//! repaired relation plus a report of what was deduced automatically, what was
//! suggested from the preference model, and which entities still need a user.
//!
//! Entities are independent, so the batch is embarrassingly parallel; set
//! [`BatchConfig::threads`] > 1 to fan the entities out over scoped worker
//! threads.
//!
//! **Layering note:** `relacc-engine`'s `BatchEngine::repair_relation` is the
//! preferred entry point for whole-relation repair — it compiles the rules
//! and master data once (`ChasePlan`) and reuses per-worker scratch buffers,
//! where this module rebuilds per-entity state.  The engine cannot be used
//! *from* this crate (it depends on `relacc-db` for resolution), so this
//! module remains as the dependency-light fallback for consumers of
//! `relacc-db` alone; keep behavioral changes (suggestion policy, outcome
//! classification) in sync with `relacc_engine::batch`.

use crate::resolve::{resolve_relation, ResolveConfig, ResolvedEntities};
use relacc_core::chase::is_cr;
use relacc_core::{RuleSet, Specification};
use relacc_model::{MasterRelation, TargetTuple};
use relacc_store::Relation;
use relacc_topk::{topkct, CandidateSearch, PreferenceModel};

/// Configuration of a batch repair run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Entity-resolution settings (match attributes, threshold, blocking).
    pub resolve: ResolveConfig,
    /// When the chase leaves a target incomplete, suggest the best completion
    /// from a top-k search with this `k` (0 disables suggestions).
    pub suggestion_k: usize,
    /// Number of worker threads (1 = run on the calling thread).
    pub threads: usize,
}

impl BatchConfig {
    /// A single-threaded configuration with suggestions from a top-5 search.
    pub fn new(resolve: ResolveConfig) -> Self {
        BatchConfig {
            resolve,
            suggestion_k: 5,
            threads: 1,
        }
    }

    /// Use this many worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Use this `k` for completion suggestions (0 disables them).
    pub fn with_suggestion_k(mut self, k: usize) -> Self {
        self.suggestion_k = k;
        self
    }
}

/// How one entity came out of the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntityOutcome {
    /// The chase deduced a complete target tuple.
    Complete,
    /// The chase left the target incomplete; the best-scored candidate from the
    /// top-k search is attached as a suggestion.
    Suggested,
    /// The chase left the target incomplete and no candidate was available
    /// (or suggestions were disabled): a user has to look at this entity.
    NeedsUser,
    /// The specification is not Church-Rosser for this entity; its rules (or
    /// data) are conflicting and must be revised.
    NotChurchRosser,
}

/// The per-entity result of a batch run.
#[derive(Debug, Clone)]
pub struct RepairedEntity {
    /// Index of the entity in the resolution output.
    pub entity: usize,
    /// Indices of the input records that belong to this entity.
    pub records: Vec<usize>,
    /// What happened.
    pub outcome: EntityOutcome,
    /// The target deduced by the chase (empty template when not Church-Rosser).
    pub deduced: TargetTuple,
    /// The suggested completion, when [`EntityOutcome::Suggested`].
    pub suggestion: Option<TargetTuple>,
}

impl RepairedEntity {
    /// The tuple that ends up in the repaired relation: the suggestion when one
    /// exists, otherwise the deduced (possibly incomplete) target.
    pub fn repaired_tuple(&self) -> &TargetTuple {
        self.suggestion.as_ref().unwrap_or(&self.deduced)
    }
}

/// The outcome of a whole batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-entity results, in entity order.
    pub entities: Vec<RepairedEntity>,
    /// One row per entity: the repaired view of the input relation.
    pub repaired: Relation,
    /// Number of entities whose target was deduced completely by the chase.
    pub complete: usize,
    /// Number of entities completed from the preference model.
    pub suggested: usize,
    /// Number of entities that still need user attention.
    pub needs_user: usize,
    /// Number of entities whose specification is not Church-Rosser.
    pub not_church_rosser: usize,
}

impl BatchReport {
    /// Fraction of entities fully resolved without a user (chase or suggestion).
    pub fn automatic_rate(&self) -> f64 {
        if self.entities.is_empty() {
            return 1.0;
        }
        (self.complete + self.suggested) as f64 / self.entities.len() as f64
    }
}

fn repair_entity(
    entity: usize,
    records: Vec<usize>,
    spec: &Specification,
    suggestion_k: usize,
) -> RepairedEntity {
    let run = is_cr(spec);
    let Some(instance) = run.outcome.instance() else {
        return RepairedEntity {
            entity,
            records,
            outcome: EntityOutcome::NotChurchRosser,
            deduced: TargetTuple::empty(spec.ie.schema().arity()),
            suggestion: None,
        };
    };
    let deduced = instance.target.clone();
    if deduced.is_complete() {
        return RepairedEntity {
            entity,
            records,
            outcome: EntityOutcome::Complete,
            deduced,
            suggestion: None,
        };
    }
    let suggestion = if suggestion_k > 0 {
        let preference = PreferenceModel::occurrence(spec, suggestion_k);
        CandidateSearch::prepare(spec, preference)
            .ok()
            .and_then(|search| topkct(&search).candidates.into_iter().next())
            .map(|c| c.target)
    } else {
        None
    };
    let outcome = if suggestion.is_some() {
        EntityOutcome::Suggested
    } else {
        EntityOutcome::NeedsUser
    };
    RepairedEntity {
        entity,
        records,
        outcome,
        deduced,
        suggestion,
    }
}

/// Resolve a relation into entities and repair every entity with the given
/// rules and (optional) master data.
///
/// The same rule set and master relation are applied to every entity, exactly
/// as the paper's experiments do for `Med` / `CFP` / `Rest`.
pub fn repair_database(
    relation: &Relation,
    rules: &RuleSet,
    master: Option<&MasterRelation>,
    config: &BatchConfig,
) -> BatchReport {
    let resolved: ResolvedEntities = resolve_relation(relation, &config.resolve);
    // one shared Σ and Im for the whole batch: per-entity specifications are
    // reference-count bumps, not deep clones
    let shared_rules = std::sync::Arc::new(rules.clone());
    let shared_masters = std::sync::Arc::new(master.map(|im| vec![im.clone()]).unwrap_or_default());
    let specs: Vec<(usize, Vec<usize>, Specification)> = resolved
        .entities
        .iter()
        .enumerate()
        .map(|(idx, instance)| {
            let spec = Specification::shared(
                instance.clone(),
                shared_rules.clone(),
                shared_masters.clone(),
            );
            (idx, resolved.members[idx].clone(), spec)
        })
        .collect();

    let suggestion_k = config.suggestion_k;
    let mut entities: Vec<RepairedEntity> = if config.threads <= 1 || specs.len() <= 1 {
        specs
            .iter()
            .map(|(idx, records, spec)| repair_entity(*idx, records.clone(), spec, suggestion_k))
            .collect()
    } else {
        let threads = config.threads.min(specs.len());
        let chunk_size = specs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|(idx, records, spec)| {
                                repair_entity(*idx, records.clone(), spec, suggestion_k)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked"))
                .collect()
        })
    };
    entities.sort_by_key(|e| e.entity);

    let mut repaired = Relation::new(relation.schema().clone());
    let mut complete = 0usize;
    let mut suggested = 0usize;
    let mut needs_user = 0usize;
    let mut not_church_rosser = 0usize;
    for entity in &entities {
        match entity.outcome {
            EntityOutcome::Complete => complete += 1,
            EntityOutcome::Suggested => suggested += 1,
            EntityOutcome::NeedsUser => needs_user += 1,
            EntityOutcome::NotChurchRosser => not_church_rosser += 1,
        }
        repaired
            .push_row(entity.repaired_tuple().values().to_vec())
            .expect("target tuples conform to the relation schema");
    }

    BatchReport {
        entities,
        repaired,
        complete,
        suggested,
        needs_user,
        not_church_rosser,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::rules::{Predicate, TupleRule};
    use relacc_model::{CmpOp, DataType, Schema, Value};

    /// A small dirty relation with two Jordan records and one Pippen record,
    /// plus a currency rule on `rnds` that drags `pts` along.
    fn fixture() -> (Relation, RuleSet) {
        let schema = Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("pts", DataType::Int)
            .build();
        let relation = Relation::from_rows(
            schema.clone(),
            vec![
                vec![
                    Value::text("Michael Jordan"),
                    Value::Int(16),
                    Value::Int(424),
                ],
                vec![
                    Value::text("Michael  Jordan"),
                    Value::Int(27),
                    Value::Int(772),
                ],
                vec![
                    Value::text("Scottie Pippen"),
                    Value::Int(27),
                    Value::Int(639),
                ],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([
            TupleRule::new(
                "cur[rnds]",
                vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
                schema.expect_attr("rnds"),
            ),
            TupleRule::new(
                "corr[rnds->pts]",
                vec![Predicate::OrderLt {
                    attr: schema.expect_attr("rnds"),
                }],
                schema.expect_attr("pts"),
            ),
        ]);
        (relation, rules)
    }

    fn config() -> BatchConfig {
        BatchConfig::new(ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(0.6))
    }

    #[test]
    fn repairs_every_entity_and_reports_counts() {
        let (relation, rules) = fixture();
        let report = repair_database(&relation, &rules, None, &config());
        assert_eq!(report.entities.len(), 2);
        assert_eq!(report.repaired.len(), 2);
        assert_eq!(
            report.complete + report.suggested + report.needs_user + report.not_church_rosser,
            report.entities.len()
        );
        assert_eq!(report.not_church_rosser, 0);
        assert!(report.automatic_rate() > 0.0);
        // the Jordan entity keeps the most current rounds/points
        let schema = relation.schema();
        let jordan = report
            .entities
            .iter()
            .find(|e| e.records.contains(&0))
            .unwrap();
        assert_eq!(
            jordan.repaired_tuple().value(schema.expect_attr("rnds")),
            &Value::Int(27)
        );
        assert_eq!(
            jordan.repaired_tuple().value(schema.expect_attr("pts")),
            &Value::Int(772)
        );
    }

    #[test]
    fn parallel_run_matches_sequential_run() {
        let (relation, rules) = fixture();
        let sequential = repair_database(&relation, &rules, None, &config());
        let parallel = repair_database(&relation, &rules, None, &config().with_threads(4));
        assert_eq!(sequential.entities.len(), parallel.entities.len());
        for (a, b) in sequential.entities.iter().zip(parallel.entities.iter()) {
            assert_eq!(a.entity, b.entity);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.deduced, b.deduced);
            assert_eq!(a.suggestion, b.suggestion);
        }
        assert_eq!(sequential.complete, parallel.complete);
    }

    #[test]
    fn disabled_suggestions_mark_incomplete_entities_for_the_user() {
        let schema = Schema::builder("r")
            .attr("name", DataType::Text)
            .attr("color", DataType::Text)
            .build();
        // two records for one entity that disagree on an attribute with no rule
        let relation = Relation::from_rows(
            schema,
            vec![
                vec![Value::text("widget"), Value::text("red")],
                vec![Value::text("widget"), Value::text("blue")],
            ],
        )
        .unwrap();
        let rules = RuleSet::new();
        let config =
            BatchConfig::new(ResolveConfig::on_attrs(vec!["name".into()])).with_suggestion_k(0);
        let report = repair_database(&relation, &rules, None, &config);
        assert_eq!(report.entities.len(), 1);
        assert_eq!(report.entities[0].outcome, EntityOutcome::NeedsUser);
        assert_eq!(report.needs_user, 1);
        // with suggestions enabled the same entity gets completed heuristically
        let with_suggestions = repair_database(
            &relation,
            &rules,
            None,
            &BatchConfig::new(ResolveConfig::on_attrs(vec!["name".into()])),
        );
        assert_eq!(
            with_suggestions.entities[0].outcome,
            EntityOutcome::Suggested
        );
        assert!(with_suggestions.entities[0].suggestion.is_some());
    }

    #[test]
    fn master_data_fills_covered_attributes() {
        let schema = Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("team", DataType::Text)
            .build();
        let relation = Relation::from_rows(
            schema.clone(),
            vec![
                vec![Value::text("Michael Jordan"), Value::Null],
                vec![Value::text("Michael Jordan"), Value::Null],
            ],
        )
        .unwrap();
        let master_schema = Schema::builder("nba")
            .attr("name", DataType::Text)
            .attr("team", DataType::Text)
            .build();
        let master = MasterRelation::from_rows(
            master_schema.clone(),
            vec![vec![
                Value::text("Michael Jordan"),
                Value::text("Chicago Bulls"),
            ]],
        )
        .unwrap();
        let rules = RuleSet::from_rules([relacc_core::rules::MasterRule::new(
            "m",
            vec![relacc_core::rules::MasterPremise::TargetEqMaster(
                schema.expect_attr("name"),
                master_schema.expect_attr("name"),
            )],
            vec![(
                schema.expect_attr("team"),
                master_schema.expect_attr("team"),
            )],
        )]);
        let report = repair_database(
            &relation,
            &rules,
            Some(&master),
            &BatchConfig::new(ResolveConfig::on_attrs(vec!["name".into()])),
        );
        assert_eq!(report.entities.len(), 1);
        assert_eq!(report.complete, 1);
        assert_eq!(
            report.entities[0].deduced.value(schema.expect_attr("team")),
            &Value::text("Chicago Bulls")
        );
    }
}
