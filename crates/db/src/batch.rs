//! Database-level accuracy improvement — **deprecated compatibility shim**.
//!
//! **Layering note (resolved):** this module used to duplicate the batch
//! pipeline of `relacc-engine` because the engine depended on `relacc-db` for
//! entity resolution, so `relacc-db` could not call back into it.  Resolution
//! now lives in the dependency-light `relacc-resolve` crate, the cycle is
//! gone, and the whole pipeline — one [`EntityOutcome`], one [`BatchReport`],
//! one suggestion policy, the compile-once `ChasePlan` + per-worker
//! `ChaseScratch` evaluation path and dynamic work-stealing scheduling — lives
//! in [`relacc_engine::batch`].  This module only maps the historical
//! [`BatchConfig`] onto a [`relacc_engine::BatchEngine`] and delegates; it
//! contains no chase or top-k logic of its own.  New code should construct a
//! [`BatchEngine`] directly.

use relacc_core::RuleSet;
use relacc_engine::BatchEngine;
use relacc_model::MasterRelation;
use relacc_resolve::ResolveConfig;
use relacc_store::Relation;

pub use relacc_engine::{BatchReport, EntityOutcome, EntityResult, RelationRepair, RepairSkip};

/// Historical name of the per-entity result; the unified type lives in
/// `relacc-engine` and carries both the input-record membership (`records`)
/// and the Church-Rosser conflict report (`conflict`), which the two former
/// duplicates each held only half of.
#[deprecated(since = "0.2.0", note = "use `relacc_engine::EntityResult`")]
pub type RepairedEntity = relacc_engine::EntityResult;

/// Configuration of a batch repair run (kept for compatibility; maps onto
/// [`relacc_engine::EngineConfig`] plus a [`ResolveConfig`]).
///
/// Migration: construct a [`BatchEngine`] and use its builder methods —
/// `BatchConfig::with_threads` is `BatchEngine::with_threads`,
/// `BatchConfig::with_suggestion_k` is `BatchEngine::with_suggestion_k`, and
/// the `resolve` field is passed to [`BatchEngine::repair_relation`] per call
/// instead of being baked into the config.
#[deprecated(
    since = "0.2.0",
    note = "configure `relacc_engine::BatchEngine` directly and pass the \
            `ResolveConfig` to `repair_relation`"
)]
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Entity-resolution settings (match attributes, threshold, blocking).
    pub resolve: ResolveConfig,
    /// When the chase leaves a target incomplete, suggest the best completion
    /// from a top-k search with this `k` (0 disables suggestions).
    pub suggestion_k: usize,
    /// Number of worker threads (1 = run on the calling thread).
    pub threads: usize,
}

#[allow(deprecated)]
impl BatchConfig {
    /// A single-threaded configuration with suggestions from a top-5 search.
    pub fn new(resolve: ResolveConfig) -> Self {
        BatchConfig {
            resolve,
            suggestion_k: 5,
            threads: 1,
        }
    }

    /// Use this many worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Use this `k` for completion suggestions (0 disables them).
    pub fn with_suggestion_k(mut self, k: usize) -> Self {
        self.suggestion_k = k;
        self
    }
}

/// Resolve a relation into entities and repair every entity with the given
/// rules and (optional) master data.
///
/// Deprecated delegation shim: compiles one [`BatchEngine`] for the workload
/// and calls [`BatchEngine::repair_relation`], so rules and master data are
/// compiled once for the whole batch (the old implementation recompiled them
/// per entity) and entities are scheduled dynamically over the worker pool
/// (the old implementation pre-partitioned into static chunks, stalling on
/// skewed entity sizes).
///
/// The signature is unchanged but the return type is the engine's
/// [`RelationRepair`]: the old flat report's fields now live under
/// `repair.report` (per-entity results, counts) and `repair.repaired` (the
/// one-row-per-entity relation), and what `RepairedEntity::repaired_tuple`
/// used to return is [`EntityResult::final_target`].
///
/// # Panics
///
/// Panics when the rules do not validate against the relation's schema — the
/// historical signature has no error channel for plan compilation.  Use
/// [`BatchEngine::new`] directly to handle that case.
#[deprecated(
    since = "0.2.0",
    note = "use `relacc_engine::BatchEngine::repair_relation`"
)]
#[allow(deprecated)]
pub fn repair_database(
    relation: &Relation,
    rules: &RuleSet,
    master: Option<&MasterRelation>,
    config: &BatchConfig,
) -> RelationRepair {
    let masters = master.map(|im| vec![im.clone()]).unwrap_or_default();
    let engine = BatchEngine::new(relation.schema().clone(), rules.clone(), masters)
        .expect("rules validate against the relation schema")
        .with_threads(config.threads.max(1))
        .with_suggestion_k(config.suggestion_k);
    engine.repair_relation(relation, &config.resolve)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use relacc_core::rules::{Predicate, TupleRule};
    use relacc_model::{CmpOp, DataType, Schema, Value};

    /// A small dirty relation with two Jordan records and one Pippen record,
    /// plus a currency rule on `rnds` that drags `pts` along.
    fn fixture() -> (Relation, RuleSet) {
        let schema = Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("pts", DataType::Int)
            .build();
        let relation = Relation::from_rows(
            schema.clone(),
            vec![
                vec![
                    Value::text("Michael Jordan"),
                    Value::Int(16),
                    Value::Int(424),
                ],
                vec![
                    Value::text("Michael  Jordan"),
                    Value::Int(27),
                    Value::Int(772),
                ],
                vec![
                    Value::text("Scottie Pippen"),
                    Value::Int(27),
                    Value::Int(639),
                ],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([
            TupleRule::new(
                "cur[rnds]",
                vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
                schema.expect_attr("rnds"),
            ),
            TupleRule::new(
                "corr[rnds->pts]",
                vec![Predicate::OrderLt {
                    attr: schema.expect_attr("rnds"),
                }],
                schema.expect_attr("pts"),
            ),
        ]);
        (relation, rules)
    }

    fn config() -> BatchConfig {
        BatchConfig::new(ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(0.6))
    }

    #[test]
    fn repairs_every_entity_and_reports_counts() {
        let (relation, rules) = fixture();
        let repair = repair_database(&relation, &rules, None, &config());
        let report = &repair.report;
        assert_eq!(report.entities.len(), 2);
        assert_eq!(repair.repaired.len(), 2);
        assert_eq!(
            report.complete + report.suggested + report.needs_user + report.not_church_rosser,
            report.entities.len()
        );
        assert_eq!(report.not_church_rosser, 0);
        assert!(report.automatic_rate() > 0.0);
        // the Jordan entity keeps the most current rounds/points
        let schema = relation.schema();
        let jordan = report
            .entities
            .iter()
            .find(|e| e.records.contains(&0))
            .unwrap();
        assert_eq!(
            jordan.final_target().value(schema.expect_attr("rnds")),
            &Value::Int(27)
        );
        assert_eq!(
            jordan.final_target().value(schema.expect_attr("pts")),
            &Value::Int(772)
        );
    }

    #[test]
    fn parallel_run_matches_sequential_run() {
        let (relation, rules) = fixture();
        let sequential = repair_database(&relation, &rules, None, &config());
        let parallel = repair_database(&relation, &rules, None, &config().with_threads(4));
        assert_eq!(
            sequential.report.entities.len(),
            parallel.report.entities.len()
        );
        for (a, b) in sequential
            .report
            .entities
            .iter()
            .zip(parallel.report.entities.iter())
        {
            assert_eq!(a.entity, b.entity);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.deduced, b.deduced);
            assert_eq!(a.suggestion, b.suggestion);
            assert_eq!(a.records, b.records);
        }
        assert_eq!(sequential.report.complete, parallel.report.complete);
    }

    #[test]
    fn disabled_suggestions_mark_incomplete_entities_for_the_user() {
        let schema = Schema::builder("r")
            .attr("name", DataType::Text)
            .attr("color", DataType::Text)
            .build();
        // two records for one entity that disagree on an attribute with no rule
        let relation = Relation::from_rows(
            schema,
            vec![
                vec![Value::text("widget"), Value::text("red")],
                vec![Value::text("widget"), Value::text("blue")],
            ],
        )
        .unwrap();
        let rules = RuleSet::new();
        let config =
            BatchConfig::new(ResolveConfig::on_attrs(vec!["name".into()])).with_suggestion_k(0);
        let repair = repair_database(&relation, &rules, None, &config);
        assert_eq!(repair.report.entities.len(), 1);
        assert_eq!(repair.report.entities[0].outcome, EntityOutcome::NeedsUser);
        assert_eq!(repair.report.needs_user, 1);
        // with suggestions enabled the same entity gets completed heuristically
        let with_suggestions = repair_database(
            &relation,
            &rules,
            None,
            &BatchConfig::new(ResolveConfig::on_attrs(vec!["name".into()])),
        );
        assert_eq!(
            with_suggestions.report.entities[0].outcome,
            EntityOutcome::Suggested
        );
        assert!(with_suggestions.report.entities[0].suggestion.is_some());
    }

    #[test]
    fn master_data_fills_covered_attributes() {
        let schema = Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("team", DataType::Text)
            .build();
        let relation = Relation::from_rows(
            schema.clone(),
            vec![
                vec![Value::text("Michael Jordan"), Value::Null],
                vec![Value::text("Michael Jordan"), Value::Null],
            ],
        )
        .unwrap();
        let master_schema = Schema::builder("nba")
            .attr("name", DataType::Text)
            .attr("team", DataType::Text)
            .build();
        let master = MasterRelation::from_rows(
            master_schema.clone(),
            vec![vec![
                Value::text("Michael Jordan"),
                Value::text("Chicago Bulls"),
            ]],
        )
        .unwrap();
        let rules = RuleSet::from_rules([relacc_core::rules::MasterRule::new(
            "m",
            vec![relacc_core::rules::MasterPremise::TargetEqMaster(
                schema.expect_attr("name"),
                master_schema.expect_attr("name"),
            )],
            vec![(
                schema.expect_attr("team"),
                master_schema.expect_attr("team"),
            )],
        )]);
        let repair = repair_database(
            &relation,
            &rules,
            Some(&master),
            &BatchConfig::new(ResolveConfig::on_attrs(vec!["name".into()])),
        );
        assert_eq!(repair.report.entities.len(), 1);
        assert_eq!(repair.report.complete, 1);
        assert_eq!(
            repair.report.entities[0]
                .deduced
                .value(schema.expect_attr("team")),
            &Value::text("Chicago Bulls")
        );
    }
}
