//! # relacc-serve
//!
//! The concurrent serving layer over the incremental engines: generation-
//! pinned point reads, snapshot deltas and per-entity change feeds, all built
//! on the epoch hub of `relacc-engine` ([`relacc_engine::EpochHub`]).
//!
//! The engines stay single-writer: a driver thread owns the
//! [`relacc_engine::IncrementalEngine`] / [`relacc_engine::ShardedEngine`]
//! and applies update batches; every committed mutation publishes an
//! immutable [`Epoch`].  A [`Server`] holds only a cloneable hub handle, so
//! any number of reader threads can
//!
//! * **pin** an epoch ([`Server::pin`] / [`Server::pin_at`]) and read a
//!   frozen, consistent snapshot for as long as they hold the `Arc` — the
//!   writer never blocks on them and they never observe a torn state;
//! * **point-read** single rows or entities at a pinned generation
//!   ([`Server::repaired_row`], [`Server::entity_result`]) in O(block)
//!   instead of O(corpus);
//! * **diff** two generations ([`Server::changes_since`]) as whole-block
//!   [`SnapshotDelta`]s that compose back onto the base snapshot
//!   bit-identically;
//! * **subscribe** ([`Server::subscribe`]) to a change feed that turns each
//!   committed batch into per-entity [`EntityChange`]s, falling back to a
//!   `resync` batch (computed by a full diff of the two pinned epochs, so it
//!   is still exact) when the hub's retention window was outrun.
//!
//! The engine and the transport are separated by [`ServeBackend`]: anything
//! that can hand out an [`EpochHub`] can be served, and the engines never
//! learn who consumes their epochs.
//!
//! ```
//! use relacc_serve::{ServeBackend, Server};
//! # use relacc_core::rules::{Predicate, RuleSet, TupleRule};
//! # use relacc_engine::{BatchEngine, IncrementalEngine};
//! # use relacc_model::{CmpOp, DataType, Schema, Value};
//! # use relacc_resolve::{BlockingStrategy, ResolveConfig};
//! # use relacc_store::{Generation, Relation, RowId, UpdateBatch};
//! # let schema = Schema::builder("stat")
//! #     .attr("name", DataType::Text)
//! #     .attr("rnds", DataType::Int)
//! #     .build();
//! # let rules = RuleSet::from_rules([TupleRule::new(
//! #     "cur",
//! #     vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
//! #     schema.expect_attr("rnds"),
//! # )]);
//! # let batch = BatchEngine::new(schema.clone(), rules, vec![]).unwrap();
//! # let seed = Relation::from_rows(
//! #     schema.clone(),
//! #     vec![vec![Value::text("mj"), Value::Int(16)]],
//! # )
//! # .unwrap();
//! # let mut engine = IncrementalEngine::open(
//! #     batch,
//! #     "stat",
//! #     &seed,
//! #     ResolveConfig::on_attrs(vec!["name".into()])
//! #         .with_strategy(BlockingStrategy::ExactKey),
//! # );
//! let server = Server::new(&engine);          // cheap hub handle, Send + Sync
//! let mut feed = server.subscribe();
//! engine
//!     .apply(&UpdateBatch::new("stat").insert(vec![Value::text("mj"), Value::Int(27)]))
//!     .unwrap();
//! // generation-pinned point read, O(block)
//! let row = server.repaired_row(RowId(1), Generation(1)).unwrap();
//! assert_eq!(row.unwrap()[1], Value::Int(27));
//! // the commit arrives on the feed as per-entity changes
//! let batch = feed.try_next().unwrap();
//! assert!(!batch.resync);
//! assert!(!batch.changes.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use relacc_engine::{
    Epoch, EpochError, EpochHub, EpochId, IncrementalEngine, ShardedEngine, SnapshotDelta,
};
use relacc_model::Value;
use relacc_resolve::BlockKey;
use relacc_store::{Generation, RowId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

pub use relacc_engine::{BlockView, EntityView};

/// Anything that can be served: an engine (or transport shim) that hands out
/// the [`EpochHub`] its commits publish into.  This is the full seam between
/// engine and serving layer — a [`Server`] keeps only the hub handle.
pub trait ServeBackend {
    /// A cloneable handle to the backend's epoch hub.
    fn epochs(&self) -> EpochHub;
}

impl ServeBackend for IncrementalEngine {
    fn epochs(&self) -> EpochHub {
        IncrementalEngine::epochs(self)
    }
}

impl ServeBackend for ShardedEngine {
    fn epochs(&self) -> EpochHub {
        ShardedEngine::epochs(self)
    }
}

impl ServeBackend for EpochHub {
    fn epochs(&self) -> EpochHub {
        self.clone()
    }
}

/// The read front of one engine: pinned reads, generation-addressed point
/// reads, snapshot deltas and subscriptions.  Cheap to clone and `Send +
/// Sync` — hand one to every reader thread.
#[derive(Debug, Clone)]
pub struct Server {
    hub: EpochHub,
}

impl Server {
    /// Serve the given backend's epochs.
    pub fn new(backend: &impl ServeBackend) -> Self {
        Server {
            hub: backend.epochs(),
        }
    }

    /// The underlying hub handle.
    pub fn hub(&self) -> EpochHub {
        self.hub.clone()
    }

    /// Pin the current epoch.  The returned view stays frozen and fully
    /// readable for as long as the `Arc` lives, concurrent commits
    /// notwithstanding.
    pub fn pin(&self) -> Arc<Epoch> {
        self.hub.current()
    }

    /// Pin the epoch of a specific generation (the earliest retained epoch
    /// reflecting it).  [`EpochError::Evicted`] when the generation left the
    /// retention window — re-pin the current epoch instead.
    pub fn pin_at(&self, generation: Generation) -> Result<Arc<Epoch>, EpochError> {
        self.hub.at_generation(generation)
    }

    /// The repaired row that `row`'s entity materializes to at `generation`,
    /// in O(block).  `Ok(None)` when the row was not live at that generation
    /// (or its entity materializes no row).
    pub fn repaired_row(
        &self,
        row: RowId,
        generation: Generation,
    ) -> Result<Option<Vec<Value>>, EpochError> {
        Ok(self.pin_at(generation)?.repaired_row(row))
    }

    /// The full repair result of the entity owning `row` at `generation`, in
    /// O(block).  `Ok(None)` when the row was not live at that generation.
    pub fn entity_result(
        &self,
        row: RowId,
        generation: Generation,
    ) -> Result<Option<EntityView>, EpochError> {
        Ok(self.pin_at(generation)?.entity_result(row))
    }

    /// Everything that changed between `since` and the current epoch, as
    /// whole-block changes.  Composing the delta onto the base epoch's block
    /// views reproduces the current snapshot bit-identically
    /// ([`SnapshotDelta::apply_to`]).
    pub fn changes_since(&self, since: Generation) -> Result<SnapshotDelta, EpochError> {
        self.hub.changes_since(since)
    }

    /// Subscribe to the change feed, starting from the current epoch:
    /// batches committed after this call arrive as per-entity changes.
    pub fn subscribe(&self) -> Subscription {
        Subscription {
            hub: self.hub.clone(),
            last: self.hub.current(),
        }
    }
}

/// One consumer's position in the change feed.  Each call to
/// [`Subscription::next_batch`] / [`Subscription::try_next`] advances the
/// cursor to the then-current epoch and reports every entity whose repair
/// changed in between.
///
/// The subscription pins its cursor epoch, so even when the hub's retention
/// window is outrun (more commits than retained epochs since the last poll,
/// or a slow consumer) the feed stays **exact**: the batch is then computed
/// by a full diff of the pinned cursor epoch against the current one and
/// flagged [`ChangeBatch::resync`].
#[derive(Debug)]
pub struct Subscription {
    hub: EpochHub,
    last: Arc<Epoch>,
}

impl Subscription {
    /// The epoch the cursor currently sits on.
    pub fn last_seen(&self) -> &Arc<Epoch> {
        &self.last
    }

    /// Drain the feed without blocking: `None` when no epoch newer than the
    /// cursor has been published.  A batch with no entity changes still
    /// advances the cursor (e.g. a master delta that revalidated every
    /// repair unchanged).
    pub fn try_next(&mut self) -> Option<ChangeBatch> {
        let current = self.hub.current();
        if current.id() <= self.last.id() {
            return None;
        }
        Some(self.advance_to(current))
    }

    /// Block until an epoch newer than the cursor is published, up to
    /// `timeout`, and return the change batch up to it.  `None` on timeout.
    pub fn next_batch(&mut self, timeout: Duration) -> Option<ChangeBatch> {
        let current = self.hub.wait_newer(self.last.id(), timeout)?;
        Some(self.advance_to(current))
    }

    /// Diff the cursor epoch against `current` and move the cursor.
    fn advance_to(&mut self, current: Arc<Epoch>) -> ChangeBatch {
        let last = std::mem::replace(&mut self.last, Arc::clone(&current));
        let (resync, changes) = match self.hub.epochs_after(last.id()) {
            Some(epochs) => {
                // the retained dirty sets cover the whole span: only the
                // blocks some intermediate epoch touched can have changed
                let mut keys: BTreeSet<BlockKey> = BTreeSet::new();
                for epoch in epochs.iter().filter(|e| e.id() <= current.id()) {
                    keys.extend(epoch.dirty_keys().cloned());
                }
                let changes = keys
                    .iter()
                    .flat_map(|key| diff_block(key, last.block_view(key), current.block_view(key)))
                    .collect();
                (false, changes)
            }
            None => {
                // part of the history was evicted — diff every block of the
                // two pinned epochs instead (exact, just not incremental)
                let before = last.block_views();
                let after = current.block_views();
                let keys: BTreeSet<&BlockKey> = before.keys().chain(after.keys()).collect();
                let changes = keys
                    .into_iter()
                    .flat_map(|key| {
                        diff_block(key, before.get(key).cloned(), after.get(key).cloned())
                    })
                    .collect();
                (true, changes)
            }
        };
        ChangeBatch {
            from: last.generation(),
            from_epoch: last.id(),
            to: current.generation(),
            to_epoch: current.id(),
            resync,
            changes,
        }
    }
}

/// All entity-level changes between two feed positions.
#[derive(Debug, Clone)]
pub struct ChangeBatch {
    /// Generation of the cursor epoch the batch starts from.
    pub from: Generation,
    /// The exact cursor epoch.
    pub from_epoch: EpochId,
    /// Generation of the epoch the batch advances to.
    pub to: Generation,
    /// The epoch the cursor advanced to.
    pub to_epoch: EpochId,
    /// True when the hub's retention window was outrun and the batch was
    /// computed by a full epoch diff instead of the per-commit dirty sets.
    /// The contents are still exact.
    pub resync: bool,
    /// Per-entity changes, grouped by block in ascending key order.
    pub changes: Vec<EntityChange>,
}

impl ChangeBatch {
    /// True when no entity's repair changed (the cursor still advanced).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// One entity's change inside a [`ChangeBatch`].  Entities are identified by
/// their full member-record set (global row ids): a membership change (an
/// entity gaining or losing a record, entities merging or splitting) appears
/// as `Removed` of the old set(s) plus `Upserted` of the new.
#[derive(Debug, Clone)]
pub struct EntityChange {
    /// Global key of the block the entity lives in.
    pub block: BlockKey,
    /// What happened to it.
    pub kind: EntityChangeKind,
}

/// The two kinds of entity change a feed batch can carry.
#[derive(Debug, Clone)]
pub enum EntityChangeKind {
    /// The entity (keyed by its record set) is new, or its repair changed:
    /// the attached view is its current state (boxed — a view is an order of
    /// magnitude larger than the `Removed` arm).
    Upserted(Box<EntityView>),
    /// No entity with this record set exists any more.
    Removed {
        /// The vanished entity's member rows (global ids, ascending).
        records: Vec<RowId>,
    },
}

/// Per-entity diff of one block across two epochs.  `None` views stand for
/// "block absent at that epoch".
fn diff_block(
    key: &BlockKey,
    before: Option<BlockView>,
    after: Option<BlockView>,
) -> Vec<EntityChange> {
    let empty = Vec::new();
    let old_entities = before.as_ref().map_or(&empty, |v| &v.entities);
    let new_entities = after.as_ref().map_or(&empty, |v| &v.entities);
    let old_by_records: BTreeMap<&[RowId], &EntityView> = old_entities
        .iter()
        .map(|e| (e.records.as_slice(), e))
        .collect();
    let mut changes = Vec::new();
    for entity in new_entities {
        let unchanged = old_by_records
            .get(entity.records.as_slice())
            .is_some_and(|old| entity_unchanged(old, entity));
        if !unchanged {
            changes.push(EntityChange {
                block: key.clone(),
                kind: EntityChangeKind::Upserted(Box::new(entity.clone())),
            });
        }
    }
    for entity in old_entities {
        let survives = new_entities.iter().any(|n| n.records == entity.records);
        if !survives {
            changes.push(EntityChange {
                block: key.clone(),
                kind: EntityChangeKind::Removed {
                    records: entity.records.clone(),
                },
            });
        }
    }
    changes
}

/// Did the entity's repair survive the epoch boundary untouched?
fn entity_unchanged(old: &EntityView, new: &EntityView) -> bool {
    old.records == new.records
        && old.repaired == new.repaired
        && old.result.outcome == new.result.outcome
        && old.result.final_target() == new.result.final_target()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::rules::{Predicate, RuleSet, TupleRule};
    use relacc_engine::{BatchEngine, IncrementalEngine};
    use relacc_model::{CmpOp, DataType, Schema, SchemaRef, Value};
    use relacc_resolve::{BlockingStrategy, ResolveConfig};
    use relacc_store::{Relation, UpdateBatch};

    fn schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("rnds", DataType::Int)
            .build()
    }

    fn open_engine() -> IncrementalEngine {
        let s = schema();
        let rules = RuleSet::from_rules([TupleRule::new(
            "cur",
            vec![Predicate::cmp_attrs(s.expect_attr("rnds"), CmpOp::Lt)],
            s.expect_attr("rnds"),
        )]);
        let engine = BatchEngine::new(s.clone(), rules, vec![]).unwrap();
        let seed = Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::text("mj"), Value::Int(16)],
                vec![Value::text("mj"), Value::Int(27)],
                vec![Value::text("sp"), Value::Int(10)],
            ],
        )
        .unwrap();
        IncrementalEngine::open(
            engine,
            "stat",
            &seed,
            ResolveConfig::on_attrs(vec!["name".into()]).with_strategy(BlockingStrategy::ExactKey),
        )
    }

    #[test]
    fn pinned_point_reads_by_generation() {
        let mut engine = open_engine();
        let server = Server::new(&engine);
        engine
            .apply(&UpdateBatch::new("stat").insert(vec![Value::text("mj"), Value::Int(35)]))
            .unwrap();
        // generation 0: mj's latest round was 27
        let g0 = server.repaired_row(RowId(0), Generation(0)).unwrap();
        assert_eq!(g0.unwrap()[1], Value::Int(27));
        // generation 1: the new record wins
        let g1 = server.repaired_row(RowId(0), Generation(1)).unwrap();
        assert_eq!(g1.unwrap()[1], Value::Int(35));
        // the inserted row is invisible at generation 0...
        assert_eq!(server.repaired_row(RowId(3), Generation(0)).unwrap(), None);
        // ...and a never-published generation is an error
        assert_eq!(
            server.repaired_row(RowId(0), Generation(9)),
            Err(EpochError::Unknown(Generation(9)))
        );
    }

    #[test]
    fn entity_result_reports_membership() {
        let engine = open_engine();
        let server = Server::new(&engine);
        let mj = server
            .entity_result(RowId(1), Generation(0))
            .unwrap()
            .expect("row 1 is live");
        assert_eq!(mj.records, vec![RowId(0), RowId(1)]);
        let sp = server
            .entity_result(RowId(2), Generation(0))
            .unwrap()
            .expect("row 2 is live");
        assert_eq!(sp.records, vec![RowId(2)]);
    }

    #[test]
    fn feed_reports_upserts_and_removes() {
        let mut engine = open_engine();
        let server = Server::new(&engine);
        let mut feed = server.subscribe();
        assert!(feed.try_next().is_none(), "no commit yet");

        engine
            .apply(
                &UpdateBatch::new("stat")
                    .insert(vec![Value::text("mj"), Value::Int(35)])
                    .delete(RowId(2)),
            )
            .unwrap();
        let batch = feed.next_batch(Duration::from_secs(1)).expect("committed");
        assert!(!batch.resync);
        assert_eq!(batch.from, Generation(0));
        assert_eq!(batch.to, Generation(1));
        // mj grew: Removed{0,1} + Upserted{0,1,3}; sp vanished: Removed{2}
        let mut upserted = Vec::new();
        let mut removed = Vec::new();
        for change in &batch.changes {
            match &change.kind {
                EntityChangeKind::Upserted(view) => upserted.push(view.records.clone()),
                EntityChangeKind::Removed { records } => removed.push(records.clone()),
            }
        }
        assert_eq!(upserted, vec![vec![RowId(0), RowId(1), RowId(3)]]);
        removed.sort();
        assert_eq!(removed, vec![vec![RowId(0), RowId(1)], vec![RowId(2)]]);
        assert!(feed.try_next().is_none(), "feed drained");
    }

    #[test]
    fn outrun_feed_resyncs_exactly() {
        let mut engine = open_engine();
        engine.set_epoch_retention(1); // evict everything but the current epoch
        let server = Server::new(&engine);
        let mut feed = server.subscribe();
        for rnds in [30, 31, 32] {
            engine
                .apply(&UpdateBatch::new("stat").insert(vec![Value::text("mj"), Value::Int(rnds)]))
                .unwrap();
        }
        let batch = feed.try_next().expect("commits happened");
        assert!(batch.resync, "history was evicted");
        // still exact: one upsert with the full final membership
        assert_eq!(batch.changes.len(), 2);
        let EntityChangeKind::Upserted(view) = &batch.changes[0].kind else {
            panic!("expected the grown mj entity first");
        };
        assert_eq!(
            view.records,
            vec![RowId(0), RowId(1), RowId(3), RowId(4), RowId(5)]
        );
        assert_eq!(view.repaired.as_ref().unwrap()[1], Value::Int(32));
    }
}
