//! Implementations of Exp-1 .. Exp-5 (Section 7 of the paper).
//!
//! Every function regenerates one of the paper's figures or tables on the
//! synthetic stand-ins for `Med`, `CFP`, `Rest` and `Syn` (see
//! `relacc-datagen` and DESIGN.md for the substitutions) and returns the
//! measured series; the `experiments` binary prints them in a layout that can
//! be compared row-by-row with the paper.

use relacc_core::chase::is_cr;
use relacc_datagen::generator::{Dataset, RuleForms};
use relacc_datagen::rest::{rest, RestConfig, RestDataset};
use relacc_datagen::workloads::{cfp, med, syn};
use relacc_engine::{BatchEngine, EntityOutcome as EngineEntityOutcome};
use relacc_framework::{run_session, GroundTruthOracle, SessionConfig, TopKAlgorithm};
use relacc_fusion::{
    attribute_accuracy, copy_cef, deduce_order, precision_recall, voting_over_sources,
    voting_target, CopyCefConfig, ObjectId, PrecisionRecall,
};
use relacc_model::Value;
use relacc_topk::{rank_join_ct, topkct, topkcth, CandidateSearch, PreferenceModel, ScoreSource};
use std::collections::HashMap;
use std::time::Instant;

/// Global configuration of an experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Scale factor applied to the entity counts of Med / CFP / Rest
    /// (1.0 = the paper's sizes).
    pub scale: f64,
    /// Base random seed.
    pub seed: u64,
    /// Run the full-size Exp-4 parameter sweeps (otherwise a reduced sweep).
    pub full_exp4: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 0.05,
            seed: 20130622, // SIGMOD 2013 opening day
            full_exp4: false,
        }
    }
}

/// A single printable measurement row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. `k=5` or `‖Im‖=600`).
    pub label: String,
    /// Measured values as `(name, value)` pairs.
    pub values: Vec<(String, f64)>,
}

/// A block of rows belonging to one figure / table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Which paper artifact this reproduces (e.g. `Fig 6(a)`).
    pub artifact: String,
    /// Free-text description of the workload and parameters.
    pub description: String,
    /// The measured rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Render the block as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.artifact, self.description));
        for row in &self.rows {
            let vals: Vec<String> = row
                .values
                .iter()
                .map(|(k, v)| format!("{k}={v:.3}"))
                .collect();
            out.push_str(&format!("  {:<18} {}\n", row.label, vals.join("  ")));
        }
        out
    }
}

fn pct(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        100.0 * numerator as f64 / denominator as f64
    }
}

// ---------------------------------------------------------------------------
// Exp-1: effectiveness of IsCR (Fig. 6(a) and Fig. 6(e))
// ---------------------------------------------------------------------------

/// Run IsCR over every entity of a dataset with the given rule forms, returning
/// (% complete targets, % attributes deduced, % attributes deduced correctly,
/// % Church-Rosser).
///
/// The loop goes through the compile-once batch engine: one `ChasePlan` per
/// rule-form variant, evaluated against every entity in parallel.
fn iscr_effectiveness(data: &Dataset, forms: RuleForms) -> (f64, f64, f64, f64) {
    let rules = match forms {
        RuleForms::Both => data.rules.clone(),
        RuleForms::Form1Only => data.rules.only_tuple_rules(),
        RuleForms::Form2Only => data.rules.only_master_rules(),
    };
    let engine = BatchEngine::new(data.schema.clone(), rules, vec![data.master.clone()])
        .expect("generated rules validate")
        .with_suggestion_k(0);
    let instances: Vec<_> = data.entities.iter().map(|e| e.instance.clone()).collect();
    let report = engine.run_owned(instances);

    let mut complete = 0usize;
    let mut cr = 0usize;
    let mut deduced_fraction_sum = 0.0;
    let mut accuracy_sum = 0.0;
    for entity in &report.entities {
        if entity.outcome == EngineEntityOutcome::NotChurchRosser {
            continue;
        }
        let te = &entity.deduced;
        cr += 1;
        if te.is_complete() {
            complete += 1;
        }
        deduced_fraction_sum += te.filled_count() as f64 / te.arity() as f64;
        accuracy_sum += attribute_accuracy(te, &data.entities[entity.entity].truth);
    }
    let n = data.entities.len();
    (
        pct(complete, n),
        100.0 * deduced_fraction_sum / n as f64,
        100.0 * accuracy_sum / n as f64,
        pct(cr, n),
    )
}

/// Exp-1: Fig. 6(a) (complete targets) and Fig. 6(e) (deduced attributes).
pub fn exp1(config: &ExperimentConfig) -> Vec<Report> {
    let datasets = [
        ("Med", med(config.scale, config.seed)),
        ("CFP", cfp(config.scale.max(0.25), config.seed + 1)),
    ];
    let mut fig6a = Report {
        artifact: "Fig 6(a)".into(),
        description: "IsCR: % of entities with a complete deduced target (both rule forms)".into(),
        rows: Vec::new(),
    };
    let mut fig6e = Report {
        artifact: "Fig 6(e)".into(),
        description: "IsCR: % of attributes with deduced most-accurate values, by rule form".into(),
        rows: Vec::new(),
    };
    for (name, data) in &datasets {
        let (complete_both, deduced_both, correct_both, cr_both) =
            iscr_effectiveness(data, RuleForms::Both);
        let (_, deduced_f1, correct_f1, _) = iscr_effectiveness(data, RuleForms::Form1Only);
        let (_, deduced_f2, correct_f2, _) = iscr_effectiveness(data, RuleForms::Form2Only);
        fig6a.rows.push(Row {
            label: name.to_string(),
            values: vec![
                ("complete%".into(), complete_both),
                ("church_rosser%".into(), cr_both),
            ],
        });
        fig6e.rows.push(Row {
            label: name.to_string(),
            values: vec![
                ("form1_only%".into(), deduced_f1),
                ("form2_only%".into(), deduced_f2),
                ("both%".into(), deduced_both),
                ("form1_correct%".into(), correct_f1),
                ("form2_correct%".into(), correct_f2),
                ("both_correct%".into(), correct_both),
            ],
        });
    }
    vec![fig6a, fig6e]
}

// ---------------------------------------------------------------------------
// Exp-2: top-k effectiveness (Fig. 6(b), 6(f), 6(c), 6(g))
// ---------------------------------------------------------------------------

/// Rank of the entity's true target among the top-`k_max` candidates:
/// `Some(0)` when the chase already deduces the complete true target,
/// `Some(r)` (1-based) when the truth is the `r`-th candidate produced, and
/// `None` when it is not among the top `k_max` at all.
///
/// Because the candidates come out in non-increasing score order, the truth is
/// inside the top-`k` exactly when its rank is `<= k`, so a single search at
/// `k_max` yields every point of the paper's k-sweep.
fn truth_rank(
    data: &Dataset,
    idx: usize,
    forms: RuleForms,
    master_limit: Option<usize>,
    k_max: usize,
    heuristic: bool,
) -> Option<usize> {
    let spec = data.specification_with(idx, forms, master_limit);
    let truth = &data.entities[idx].truth;
    let preference = PreferenceModel::occurrence(&spec, k_max);
    let Ok(search) = CandidateSearch::prepare(&spec, preference) else {
        return None;
    };
    if search.deduced.is_complete() {
        return if &search.deduced == truth {
            Some(0)
        } else {
            None
        };
    }
    // the deduced part must agree with the truth, otherwise no completion can match
    if !search.deduced.is_completed_by(truth) {
        return None;
    }
    let result = if heuristic {
        topkcth(&search)
    } else {
        topkct(&search)
    };
    result
        .candidates
        .iter()
        .position(|c| &c.target == truth)
        .map(|p| p + 1)
}

/// Deterministic sample of entity indices: at most `cap` entities, evenly
/// spread so large runs stay tractable without biasing towards any prefix.
fn entity_sample(n: usize, cap: usize) -> Vec<usize> {
    if n <= cap {
        (0..n).collect()
    } else {
        let step = (n as f64 / cap as f64).ceil() as usize;
        (0..n).step_by(step.max(1)).collect()
    }
}

fn hit_rates_by_k(ranks: &[Option<usize>], ks: &[usize]) -> Vec<f64> {
    ks.iter()
        .map(|&k| {
            let hits = ranks
                .iter()
                .filter(|r| r.map(|rank| rank <= k).unwrap_or(false))
                .count();
            pct(hits, ranks.len())
        })
        .collect()
}

/// Exp-2: Fig. 6(b)/(f) (varying k) and Fig. 6(c)/(g) (varying ‖Im‖).
pub fn exp2(config: &ExperimentConfig) -> Vec<Report> {
    const KS: [usize; 5] = [5, 10, 15, 20, 25];
    const K_MAX: usize = 25;
    const SAMPLE_CAP: usize = 150;
    let mut reports = Vec::new();
    let datasets = [
        (
            "Med",
            med(config.scale, config.seed),
            "Fig 6(b)",
            "Fig 6(c)",
            2400.0,
        ),
        (
            "CFP",
            cfp(config.scale.max(0.25), config.seed + 1),
            "Fig 6(f)",
            "Fig 6(g)",
            56.0,
        ),
    ];
    for (name, data, fig_k, fig_im, im_full) in datasets {
        let sample = entity_sample(data.entities.len(), SAMPLE_CAP);
        let ranks_for = |forms: RuleForms, master_limit: Option<usize>, heuristic: bool| {
            sample
                .iter()
                .map(|&idx| truth_rank(&data, idx, forms, master_limit, K_MAX, heuristic))
                .collect::<Vec<_>>()
        };

        let mut by_k = Report {
            artifact: fig_k.to_string(),
            description: format!("{name}: % of entities whose true target is in the top-k"),
            rows: Vec::new(),
        };
        let form1 = hit_rates_by_k(&ranks_for(RuleForms::Form1Only, None, false), &KS);
        let form2 = hit_rates_by_k(&ranks_for(RuleForms::Form2Only, None, false), &KS);
        let both = hit_rates_by_k(&ranks_for(RuleForms::Both, None, false), &KS);
        let both_h = hit_rates_by_k(&ranks_for(RuleForms::Both, None, true), &KS);
        for (i, k) in KS.iter().enumerate() {
            by_k.rows.push(Row {
                label: format!("k={k}"),
                values: vec![
                    ("topkct_form1%".into(), form1[i]),
                    ("topkct_form2%".into(), form2[i]),
                    ("topkct_both%".into(), both[i]),
                    ("topkcth_both%".into(), both_h[i]),
                ],
            });
        }
        reports.push(by_k);

        let mut by_im = Report {
            artifact: fig_im.to_string(),
            description: format!("{name}: % of entities found, varying ‖Im‖ (k=15)"),
            rows: Vec::new(),
        };
        let scaled_master = (im_full * config.scale).max(4.0);
        for step in 0..=4usize {
            let limit = ((scaled_master * step as f64) / 4.0).round() as usize;
            let exact = hit_rates_by_k(&ranks_for(RuleForms::Both, Some(limit), false), &[15]);
            let heur = hit_rates_by_k(&ranks_for(RuleForms::Both, Some(limit), true), &[15]);
            by_im.rows.push(Row {
                label: format!("im={limit}"),
                values: vec![("topkct%".into(), exact[0]), ("topkcth%".into(), heur[0])],
            });
        }
        reports.push(by_im);
    }
    reports
}

// ---------------------------------------------------------------------------
// Exp-3: user interaction rounds (Fig. 6(d), 6(h))
// ---------------------------------------------------------------------------

/// Exp-3: cumulative % of entities whose true target is found within `h`
/// interaction rounds (k = 15, TopKCT suggestions, ground-truth oracle).
pub fn exp3(config: &ExperimentConfig) -> Vec<Report> {
    let datasets = [
        ("Med", med(config.scale, config.seed), "Fig 6(d)", 3usize),
        (
            "CFP",
            cfp(config.scale.max(0.25), config.seed + 1),
            "Fig 6(h)",
            4usize,
        ),
    ];
    let mut reports = Vec::new();
    for (name, data, fig, max_h) in datasets {
        let sample = entity_sample(data.entities.len(), 150);
        let mut rounds_needed: Vec<Option<usize>> = Vec::new();
        for idx in sample {
            let spec = data.specification(idx);
            let truth = data.entities[idx].truth.clone();
            let mut oracle = GroundTruthOracle::new(truth.clone(), config.seed + idx as u64);
            let session_config = SessionConfig {
                k: 15,
                max_rounds: max_h + 2,
                algorithm: TopKAlgorithm::TopKCT,
                score_source: ScoreSource::OccurrenceCounts,
            };
            let report = run_session(&spec, &session_config, &mut oracle);
            let found = report
                .outcome
                .target()
                .map(|t| attribute_accuracy(t, &truth) == 1.0)
                .unwrap_or(false);
            rounds_needed.push(if found { Some(report.rounds) } else { None });
        }
        let n = rounds_needed.len();
        let mut report = Report {
            artifact: fig.to_string(),
            description: format!(
                "{name}: cumulative % of entities whose true target is found within h rounds"
            ),
            rows: Vec::new(),
        };
        for h in 0..=max_h {
            let found = rounds_needed
                .iter()
                .filter(|r| r.map(|x| x <= h).unwrap_or(false))
                .count();
            report.rows.push(Row {
                label: format!("h={h}"),
                values: vec![("found%".into(), pct(found, n))],
            });
        }
        reports.push(report);
    }
    reports
}

// ---------------------------------------------------------------------------
// Exp-4: efficiency (Fig. 6(i)-(l), Fig. 7(a)-(b))
// ---------------------------------------------------------------------------

fn time_algorithms(spec: &relacc_core::Specification, k: usize) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    eprintln!(
        "#   timing |Ie|={} |Im|={} |Sigma|={} k={k}",
        spec.entity_size(),
        spec.master_size(),
        spec.rule_count()
    );
    // IsCR time (reported in the text: "IsCR takes less than 10 ms")
    let start = Instant::now();
    let _ = is_cr(spec);
    out.push(("iscr_ms".into(), start.elapsed().as_secs_f64() * 1e3));

    for (name, heuristic, rank_join) in [
        ("rankjoinct_ms", false, true),
        ("topkct_ms", false, false),
        ("topkcth_ms", true, false),
    ] {
        let start = Instant::now();
        let preference = PreferenceModel::occurrence(spec, k);
        if let Ok(search) = CandidateSearch::prepare(spec, preference) {
            let _ = if rank_join {
                rank_join_ct(&search)
            } else if heuristic {
                topkcth(&search)
            } else {
                topkct(&search)
            };
        }
        out.push((name.into(), start.elapsed().as_secs_f64() * 1e3));
    }
    out
}

/// Exp-4: wall-clock scaling on `Syn` (Fig. 6(i)-(l)) and `Med` (Fig. 7(a)-(b)).
pub fn exp4(config: &ExperimentConfig) -> Vec<Report> {
    let mut reports = Vec::new();
    // default parameters of the paper: (‖Ie‖, ‖Im‖, ‖Σ‖, k) = (900, 300, 60, 15)
    let (ie_list, sigma_list, im_list, k_list, base_ie, base_im, base_sigma) = if config.full_exp4 {
        (
            vec![300usize, 600, 900, 1200, 1500],
            vec![20usize, 40, 60, 80, 100],
            vec![100usize, 200, 300, 400, 500],
            vec![5usize, 10, 15, 20, 25],
            900usize,
            300usize,
            60usize,
        )
    } else {
        (
            vec![60usize, 120, 180, 240, 300],
            vec![10usize, 20, 30, 40, 50],
            vec![20usize, 40, 60, 80, 100],
            vec![5usize, 10, 15, 20, 25],
            180usize,
            60usize,
            30usize,
        )
    };

    let mut fig6i = Report {
        artifact: "Fig 6(i)".into(),
        description: format!(
            "Syn: elapsed time varying ‖Ie‖ (‖Im‖={base_im}, ‖Σ‖={base_sigma}, k=15)"
        ),
        rows: Vec::new(),
    };
    for ie in &ie_list {
        eprintln!("# exp4: Fig 6(i) ie={ie}");
        let inst = syn(*ie, base_im, base_sigma, config.seed);
        fig6i.rows.push(Row {
            label: format!("ie={ie}"),
            values: time_algorithms(&inst.spec, 15),
        });
    }
    reports.push(fig6i);

    let mut fig6j = Report {
        artifact: "Fig 6(j)".into(),
        description: format!(
            "Syn: elapsed time varying ‖Σ‖ (‖Ie‖={base_ie}, ‖Im‖={base_im}, k=15)"
        ),
        rows: Vec::new(),
    };
    for sigma in &sigma_list {
        eprintln!("# exp4: Fig 6(j) sigma={sigma}");
        let inst = syn(base_ie, base_im, *sigma, config.seed);
        fig6j.rows.push(Row {
            label: format!("sigma={sigma}"),
            values: time_algorithms(&inst.spec, 15),
        });
    }
    reports.push(fig6j);

    let mut fig6k = Report {
        artifact: "Fig 6(k)".into(),
        description: format!(
            "Syn: elapsed time varying ‖Im‖ (‖Ie‖={base_ie}, ‖Σ‖={base_sigma}, k=15)"
        ),
        rows: Vec::new(),
    };
    for im in &im_list {
        eprintln!("# exp4: Fig 6(k) im={im}");
        let inst = syn(base_ie, *im, base_sigma, config.seed);
        fig6k.rows.push(Row {
            label: format!("im={im}"),
            values: time_algorithms(&inst.spec, 15),
        });
    }
    reports.push(fig6k);

    let mut fig6l = Report {
        artifact: "Fig 6(l)".into(),
        description: format!(
            "Syn: elapsed time varying k (‖Ie‖={base_ie}, ‖Im‖={base_im}, ‖Σ‖={base_sigma})"
        ),
        rows: Vec::new(),
    };
    for k in &k_list {
        eprintln!("# exp4: Fig 6(l) k={k}");
        let inst = syn(base_ie, base_im, base_sigma, config.seed);
        fig6l.rows.push(Row {
            label: format!("k={k}"),
            values: time_algorithms(&inst.spec, *k),
        });
    }
    reports.push(fig6l);

    // Fig. 7(a)/(b): Med, time by entity-size bucket and by ‖Im‖.
    let data = med(config.scale, config.seed);
    let buckets = [(1usize, 18usize), (19, 36), (37, 54), (55, 72), (73, 90)];
    let mut fig7a = Report {
        artifact: "Fig 7(a)".into(),
        description: "Med: mean elapsed time per entity, by entity-size bucket (k=15)".into(),
        rows: Vec::new(),
    };
    for (lo, hi) in buckets {
        let members: Vec<usize> = (0..data.entities.len())
            .filter(|&i| {
                let n = data.entities[i].instance.len();
                n >= lo && n <= hi
            })
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut sums: HashMap<String, f64> = HashMap::new();
        for &idx in &members {
            let spec = data.specification(idx);
            for (name, ms) in time_algorithms(&spec, 15) {
                *sums.entry(name).or_insert(0.0) += ms;
            }
        }
        let mut values: Vec<(String, f64)> = sums
            .into_iter()
            .map(|(k, v)| (k, v / members.len() as f64))
            .collect();
        values.sort_by(|a, b| a.0.cmp(&b.0));
        values.push(("entities".into(), members.len() as f64));
        fig7a.rows.push(Row {
            label: format!("[{lo},{hi}]"),
            values,
        });
    }
    reports.push(fig7a);

    let mut fig7b = Report {
        artifact: "Fig 7(b)".into(),
        description: "Med: mean elapsed time per entity, varying ‖Im‖ (k=15)".into(),
        rows: Vec::new(),
    };
    let full_master = data.master.len();
    let sample: Vec<usize> = (0..data.entities.len()).step_by(7).collect();
    for step in 0..=4usize {
        let limit = full_master * step / 4;
        let mut sums: HashMap<String, f64> = HashMap::new();
        for &idx in &sample {
            let spec = data.specification_with(idx, RuleForms::Both, Some(limit));
            for (name, ms) in time_algorithms(&spec, 15) {
                *sums.entry(name).or_insert(0.0) += ms;
            }
        }
        let mut values: Vec<(String, f64)> = sums
            .into_iter()
            .map(|(k, v)| (k, v / sample.len() as f64))
            .collect();
        values.sort_by(|a, b| a.0.cmp(&b.0));
        fig7b.rows.push(Row {
            label: format!("im={limit}"),
            values,
        });
    }
    reports.push(fig7b);

    reports
}

// ---------------------------------------------------------------------------
// Exp-5: truth discovery (CFP text results and Table 4)
// ---------------------------------------------------------------------------

fn rest_predictions_topkct(
    data: &RestDataset,
    weights: Option<&relacc_fusion::CopyCefResult>,
) -> Vec<usize> {
    let closed_attr = data.schema.expect_attr("closed");
    let mut predicted = Vec::new();
    for idx in 0..data.restaurants.len() {
        let spec = data.specification(idx);
        let mut preference = PreferenceModel::occurrence(&spec, 1);
        if let Some(cef) = weights {
            // plug the copyCEF posteriors in as the preference weights
            for value in [Value::Bool(true), Value::Bool(false)] {
                let p = cef.probability(ObjectId(idx), &value);
                preference.set_weight(closed_attr, value, p);
            }
        }
        let Ok(search) = CandidateSearch::prepare(&spec, preference) else {
            continue;
        };
        let closed_value = if search.deduced.is_null(closed_attr) {
            let result = topkct(&search);
            result
                .candidates
                .first()
                .map(|c| c.target.value(closed_attr).clone())
        } else {
            Some(search.deduced.value(closed_attr).clone())
        };
        if closed_value
            .map(|v| v.same(&Value::Bool(true)))
            .unwrap_or(false)
        {
            predicted.push(idx);
        }
    }
    predicted
}

fn pr_row(label: &str, pr: PrecisionRecall) -> Row {
    Row {
        label: label.to_string(),
        values: vec![
            ("precision".into(), pr.precision),
            ("recall".into(), pr.recall),
            ("f1".into(), pr.f1),
        ],
    }
}

/// Exp-5: truth discovery on CFP (text of Section 7) and on Rest (Table 4).
pub fn exp5(config: &ExperimentConfig) -> Vec<Report> {
    let mut reports = Vec::new();

    // --- CFP: % of entities whose complete true target is derived ----------
    let data = cfp(config.scale.max(0.25), config.seed + 1);
    let mut voting_hits = 0usize;
    let mut deduce_hits = 0usize;
    let mut deduce_attr_sum = 0.0;
    let mut topk_hits = 0usize;
    for idx in 0..data.entities.len() {
        let entity = &data.entities[idx];
        let truth = &entity.truth;
        // voting
        if attribute_accuracy(&voting_target(&entity.instance), truth) == 1.0 {
            voting_hits += 1;
        }
        // DeduceOrder (currency rules + the dataset's constant CFDs)
        let resolved = deduce_order(&entity.instance, &data.rules, &data.cfds).resolved;
        deduce_attr_sum += attribute_accuracy(&resolved, truth);
        if attribute_accuracy(&resolved, truth) == 1.0 {
            deduce_hits += 1;
        }
        // TopKCT with k=1
        if truth_rank(&data, idx, RuleForms::Both, None, 1, false)
            .map(|r| r <= 1)
            .unwrap_or(false)
        {
            topk_hits += 1;
        }
    }
    let n = data.entities.len();
    reports.push(Report {
        artifact: "Exp-5 (CFP)".into(),
        description: "CFP: % of entities whose complete true target is derived (k=1)".into(),
        rows: vec![
            Row {
                label: "voting".into(),
                values: vec![("complete_true%".into(), pct(voting_hits, n))],
            },
            Row {
                label: "DeduceOrder".into(),
                values: vec![
                    ("complete_true%".into(), pct(deduce_hits, n)),
                    ("attr_correct%".into(), 100.0 * deduce_attr_sum / n as f64),
                ],
            },
            Row {
                label: "TopKCT".into(),
                values: vec![("complete_true%".into(), pct(topk_hits, n))],
            },
        ],
    });

    // --- Rest: Table 4 ------------------------------------------------------
    let rest_data = rest(&RestConfig::scaled(config.scale.max(0.02), config.seed + 7));
    let truth_closed = rest_data.closed_truth();
    let closed_attr = rest_data.schema.expect_attr("closed");

    // DeduceOrder
    let deduce_predicted: Vec<usize> = (0..rest_data.restaurants.len())
        .filter(|&idx| {
            let result = deduce_order(&rest_data.restaurants[idx].instance, &rest_data.rules, &[]);
            result.resolved.value(closed_attr).same(&Value::Bool(true))
        })
        .collect();

    // voting
    let votes = voting_over_sources(&rest_data.observations);
    let voting_predicted: Vec<usize> = votes
        .iter()
        .filter(|(_, v)| {
            v.as_ref()
                .map(|v| v.same(&Value::Bool(true)))
                .unwrap_or(false)
        })
        .map(|(o, _)| o.0)
        .collect();

    // copyCEF
    let cef = copy_cef(&rest_data.observations, &CopyCefConfig::default());
    let cef_predicted: Vec<usize> = cef
        .truths
        .iter()
        .filter(|(_, v)| {
            v.as_ref()
                .map(|v| v.same(&Value::Bool(true)))
                .unwrap_or(false)
        })
        .map(|(o, _)| o.0)
        .collect();

    // TopKCT with both preference sources
    let topkct_vote_pred = rest_predictions_topkct(&rest_data, None);
    let topkct_cef_pred = rest_predictions_topkct(&rest_data, Some(&cef));

    reports.push(Report {
        artifact: "Table 4".into(),
        description: format!(
            "Rest ({} restaurants, {} sources): precision/recall/F1 on closed?",
            rest_data.restaurants.len(),
            rest_data.source_names.len()
        ),
        rows: vec![
            pr_row(
                "DeduceOrder",
                precision_recall(&deduce_predicted, &truth_closed),
            ),
            pr_row("voting", precision_recall(&voting_predicted, &truth_closed)),
            pr_row("copyCEF", precision_recall(&cef_predicted, &truth_closed)),
            pr_row(
                "TopKCT(voting)",
                precision_recall(&topkct_vote_pred, &truth_closed),
            ),
            pr_row(
                "TopKCT(copyCEF)",
                precision_recall(&topkct_cef_pred, &truth_closed),
            ),
        ],
    });

    reports
}

/// Run every experiment and collect the reports.
pub fn run_all(config: &ExperimentConfig) -> Vec<Report> {
    let mut reports = Vec::new();
    reports.extend(exp1(config));
    reports.extend(exp2(config));
    reports.extend(exp3(config));
    reports.extend(exp4(config));
    reports.extend(exp5(config));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.01,
            seed: 3,
            full_exp4: false,
        }
    }

    #[test]
    fn exp1_produces_sane_percentages() {
        let reports = exp1(&tiny_config());
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert!(!report.rows.is_empty());
            for row in &report.rows {
                for (_, v) in &row.values {
                    assert!(*v >= 0.0 && *v <= 100.0, "{}: {v}", report.artifact);
                }
            }
            assert!(!report.render().is_empty());
        }
        // both rule forms together deduce at least as much as either alone
        let fig6e = &reports[1];
        for row in &fig6e.rows {
            let get = |name: &str| {
                row.values
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            assert!(get("both%") + 1e-9 >= get("form1_only%"));
            assert!(get("both%") + 1e-9 >= get("form2_only%"));
        }
    }

    #[test]
    fn exp5_table4_shape() {
        let reports = exp5(&tiny_config());
        let table4 = reports.iter().find(|r| r.artifact == "Table 4").unwrap();
        assert_eq!(table4.rows.len(), 5);
        let f1 = |label: &str| {
            table4
                .rows
                .iter()
                .find(|r| r.label == label)
                .unwrap()
                .values
                .iter()
                .find(|(k, _)| k == "f1")
                .unwrap()
                .1
        };
        // the paper's qualitative ordering: DeduceOrder is the weakest on F1,
        // and the rule-aware TopKCT variants do not lose to plain voting
        assert!(f1("DeduceOrder") <= f1("TopKCT(voting)") + 1e-9);
        assert!(f1("voting") <= f1("TopKCT(voting)") + 0.1);
        for row in &table4.rows {
            for (_, v) in &row.values {
                assert!(*v >= 0.0 && *v <= 1.0);
            }
        }
    }
}
