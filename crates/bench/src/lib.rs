//! # relacc-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section 7), plus the Criterion benchmarks for the timing
//! figures.  The `experiments` binary prints one block per experiment
//! (Exp-1 .. Exp-5); `EXPERIMENTS.md` at the workspace root records a run and
//! compares it against the numbers reported in the paper.

#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::{ExperimentConfig, Report};
