//! # relacc-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section 7), plus the Criterion benchmarks for the timing
//! figures.  The `experiments` binary prints one block per experiment
//! (Exp-1 .. Exp-5); `EXPERIMENTS.md` at the workspace root records a run and
//! compares it against the numbers reported in the paper.

#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::{ExperimentConfig, Report};

use std::path::PathBuf;

/// Where a bench group writes its machine-readable `BENCH_*.json` report.
///
/// Real runs write at the workspace root, where the measurements are
/// **committed** and gated by `tools/bench_gate`.  Smoke runs
/// (`RELACC_BENCH_SMOKE=1`, the CI mode that executes every bench for one
/// iteration) write under `target/` instead: their one-iteration timings are
/// junk and must never clobber the committed numbers — CI enforces this with
/// a clean-tree check after the smoke run.
pub fn bench_output_path(smoke: bool, file_name: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if smoke {
        root.join("target").join(file_name)
    } else {
        root.join(file_name)
    }
}

/// True when the current process runs in CI bench-smoke mode.
pub fn smoke_mode() -> bool {
    std::env::var_os("RELACC_BENCH_SMOKE").is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Guard for the smoke-clobber bugfix: a smoke run must never produce a
    /// path that dirties the committed tree.
    #[test]
    fn smoke_reports_land_under_target_not_the_repo_root() {
        let smoke = bench_output_path(true, "BENCH_x.json");
        let real = bench_output_path(false, "BENCH_x.json");
        assert_ne!(smoke, real);
        assert!(
            smoke.components().any(|c| c.as_os_str() == "target"),
            "smoke path {} must be under target/",
            smoke.display()
        );
        assert!(
            !real.components().any(|c| c.as_os_str() == "target"),
            "real path {} must be at the repo root",
            real.display()
        );
        assert_eq!(real.file_name().unwrap(), "BENCH_x.json");
        // both resolve inside the workspace
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        assert!(smoke.starts_with(&root));
        assert!(real.starts_with(&root));
    }
}
