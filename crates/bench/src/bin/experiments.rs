//! Command-line entry point regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [exp1|exp2|exp3|exp4|exp5|all] [--scale F] [--seed N] [--full-exp4]
//! ```
//!
//! `--scale` shrinks the Med / CFP / Rest entity counts (default 0.05 ≈ a few
//! hundred entities, finishing in well under a minute in release mode);
//! `--scale 1.0` reproduces the paper's dataset sizes.  `--full-exp4` runs the
//! Exp-4 sweeps at the paper's parameter values (‖Ie‖ up to 1500).

use relacc_bench::{ExperimentConfig, Report};

fn print_reports(reports: &[Report]) {
    for report in reports {
        println!("{}", report.render());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut config = ExperimentConfig::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "exp1" | "exp2" | "exp3" | "exp4" | "exp5" | "all" => which = arg.clone(),
            "--scale" => {
                if let Some(v) = iter.next() {
                    config.scale = v.parse().expect("--scale takes a float");
                }
            }
            "--seed" => {
                if let Some(v) = iter.next() {
                    config.seed = v.parse().expect("--seed takes an integer");
                }
            }
            "--full-exp4" => config.full_exp4 = true,
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: experiments [exp1|exp2|exp3|exp4|exp5|all] [--scale F] [--seed N] [--full-exp4]"
                );
                std::process::exit(2);
            }
        }
    }

    println!(
        "# relacc experiments — scale={} seed={} full_exp4={}",
        config.scale, config.seed, config.full_exp4
    );
    println!();
    let reports = match which.as_str() {
        "exp1" => relacc_bench::experiments::exp1(&config),
        "exp2" => relacc_bench::experiments::exp2(&config),
        "exp3" => relacc_bench::experiments::exp3(&config),
        "exp4" => relacc_bench::experiments::exp4(&config),
        "exp5" => relacc_bench::experiments::exp5(&config),
        _ => relacc_bench::experiments::run_all(&config),
    };
    print_reports(&reports);
}
