//! `serve`: point-read latency of the epoch-pinned serving layer vs the
//! snapshot-per-read baseline, on a mixed read/write Med stream.
//!
//! The serving claim: with epoch-versioned block caches, answering "what is
//! row r's repaired value right now?" costs **O(block)** — pin the current
//! epoch (one `Arc` clone under the hub lock), binary-search the pinned
//! rows, recompute the row's block key and look the block up in the pinned
//! cache.  Without epochs the only consistent read is a full `snapshot()`:
//! an **O(corpus)** merge of every block into a fresh `RelationRepair` for
//! every read.
//!
//! The run replays a scripted mixed stream (`StreamConfig::with_reads`):
//! after each applied batch it serves that batch's scripted point reads both
//! ways — pinned epoch vs fresh full snapshot — asserting the answers are
//! identical, and reports the per-read medians.  `read_vs_snapshot_speedup`
//! is the snapshot-per-read median over the pinned-read median; the
//! committed `BENCH_serve.json` is gated by `tools/bench_gate`
//! (`read_vs_snapshot_speedup ≥ 10`).  A criterion group repeats both read
//! paths over the final state.

use criterion::Criterion;
use relacc_bench::{bench_output_path, smoke_mode as smoke};
use relacc_datagen::streaming::{med_stream, StreamConfig, StreamOp, UpdateStream};
use relacc_engine::{BatchEngine, IncrementalEngine};
use relacc_model::Value;
use relacc_resolve::{BlockingStrategy, ResolveConfig};
use relacc_store::RowId;
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

fn stream() -> UpdateStream {
    let scale = if smoke() { 0.01 } else { 0.3 };
    let config = StreamConfig {
        n_batches: if smoke() { 2 } else { 8 },
        inserts_per_batch: 4,
        deletes_per_batch: 2,
        master_appends_per_batch: 1,
        seed: 57,
        ..StreamConfig::default()
    }
    .with_reads(if smoke() { 2 } else { 8 });
    med_stream(scale, 29, &config)
}

fn open_engine(stream: &UpdateStream) -> IncrementalEngine {
    let engine = BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate")
    .with_threads(1);
    IncrementalEngine::open(
        engine,
        stream.name.clone(),
        &stream.relation,
        ResolveConfig::on_attrs(stream.match_attrs.clone())
            .with_strategy(BlockingStrategy::ExactKey),
    )
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    if samples.is_empty() {
        return 0.0;
    }
    samples[samples.len() / 2]
}

/// The snapshot-per-read baseline's row lookup: live ids ascending map 1:1
/// onto snapshot positions.
fn position_map(engine: &IncrementalEngine) -> HashMap<RowId, usize> {
    engine
        .relation()
        .rows()
        .iter()
        .enumerate()
        .map(|(pos, row)| (row.id, pos))
        .collect()
}

/// The baseline's answer for the source row at corpus position `pos`: the
/// one repaired row of the entity owning that position (`repaired` carries
/// one row per entity, keyed through `row_entities`).
fn lookup_repaired(snap: &relacc_engine::RelationRepair, pos: usize) -> Option<Vec<Value>> {
    let result = snap
        .report
        .entities
        .iter()
        .find(|e| e.records.contains(&pos))?;
    let repaired_pos = snap.row_entities.iter().position(|&e| e == result.entity)?;
    Some(snap.repaired.rows()[repaired_pos].values().to_vec())
}

/// Replay the mixed stream, timing every scripted read both ways, and write
/// `BENCH_serve.json`.  Returns the engine in its final state.
fn serve_report() -> IncrementalEngine {
    let stream = stream();
    let mut engine = open_engine(&stream);
    let hub = engine.epochs();

    let mut point_ms: Vec<f64> = Vec::new();
    let mut snapshot_ms: Vec<f64> = Vec::new();
    let mut batch_idx = 0usize;
    for op in &stream.ops {
        match op {
            StreamOp::Rows(batch) => {
                engine.apply(batch).expect("scripted batches stay valid");
                let positions = position_map(&engine);
                for &row in &stream.reads[batch_idx] {
                    // epoch-pinned point read: pin + O(block) lookup
                    let start = Instant::now();
                    let epoch = hub.current();
                    let pinned = epoch.repaired_row(row);
                    point_ms.push(start.elapsed().as_secs_f64() * 1e3);

                    // baseline: the only consistent read without epochs is a
                    // full snapshot assembly, then resolving the row's
                    // entity and its one repaired row
                    let start = Instant::now();
                    let snap = engine.snapshot();
                    let via_snapshot = lookup_repaired(&snap, positions[&row]);
                    snapshot_ms.push(start.elapsed().as_secs_f64() * 1e3);

                    assert_eq!(
                        pinned, via_snapshot,
                        "pinned read and snapshot read disagree on {row}"
                    );
                }
                batch_idx += 1;
            }
            StreamOp::MasterAppend(rows) => {
                engine
                    .apply_master_append(0, rows.clone())
                    .expect("scripted appends stay valid");
            }
        }
    }

    let entities = engine.snapshot().report.entities.len();
    let batches = batch_idx;
    let reads = point_ms.len();
    let point_median = median(&mut point_ms);
    let snapshot_median = median(&mut snapshot_ms);
    let speedup = if point_median > 0.0 {
        snapshot_median / point_median
    } else {
        0.0
    };

    println!(
        "serve/med-mixed: {reads} reads across {batches} batches over {entities} entities — \
         pinned {point_median:.4} ms/read, snapshot {snapshot_median:.3} ms/read \
         ({speedup:.0}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"corpus\": \"med-mixed\",\n  \
         \"entities\": {entities},\n  \"batches\": {batches},\n  \
         \"reads\": {reads},\n  \
         \"point_read_ms_median\": {point_median:.4},\n  \
         \"snapshot_read_ms_median\": {snapshot_median:.3},\n  \
         \"read_vs_snapshot_speedup\": {speedup:.2},\n  \
         \"smoke\": {}\n}}\n",
        smoke(),
    );
    let path = bench_output_path(smoke(), "BENCH_serve.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("serve: wrote {}", path.display()),
        Err(err) => eprintln!("serve: could not write {}: {err}", path.display()),
    }
    engine
}

/// Group output: both read paths over the final state.
fn bench_reads(c: &mut Criterion, engine: &IncrementalEngine) {
    let epoch = engine.current_epoch();
    let row = engine.relation().rows()[0].id;
    let positions = position_map(engine);
    let mut group = c.benchmark_group("serve/med-mixed");
    group.sample_size(10);
    group.bench_function("pinned_point_read", |b| {
        b.iter(|| black_box(epoch.repaired_row(row)))
    });
    group.bench_function("snapshot_per_read", |b| {
        b.iter(|| {
            let snap = engine.snapshot();
            black_box(lookup_repaired(&snap, positions[&row]))
        })
    });
    group.finish();
}

fn main() {
    let engine = serve_report();
    let mut criterion = Criterion::default();
    bench_reads(&mut criterion, &engine);
}
