//! Benchmarks for algorithm IsCR (Exp-4 text: "IsCR takes less than 10 ms" on
//! entity instances up to 1500 tuples), covering the paper's running example,
//! Med/CFP-like entities and Syn instances of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relacc_core::chase::{chase_with_grounding, ground, is_cr};
use relacc_datagen::paper_example::paper_specification;
use relacc_datagen::workloads::{cfp, med, syn};
use relacc_model::AccuracyOrders;
use std::hint::black_box;

fn bench_paper_example(c: &mut Criterion) {
    let spec = paper_specification();
    c.bench_function("iscr/paper_running_example", |b| {
        b.iter(|| black_box(is_cr(black_box(&spec))))
    });
}

fn bench_real_like(c: &mut Criterion) {
    let med_data = med(0.01, 7);
    let cfp_data = cfp(0.25, 8);
    let mut group = c.benchmark_group("iscr/per_entity");
    group.bench_function("med_entity", |b| {
        let mut idx = 0usize;
        b.iter(|| {
            idx = (idx + 1) % med_data.entities.len();
            black_box(is_cr(&med_data.specification(idx)))
        })
    });
    group.bench_function("cfp_entity", |b| {
        let mut idx = 0usize;
        b.iter(|| {
            idx = (idx + 1) % cfp_data.entities.len();
            black_box(is_cr(&cfp_data.specification(idx)))
        })
    });
    group.finish();
}

fn bench_syn_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("iscr/syn_ie_scaling");
    group.sample_size(10);
    for ie in [100usize, 300, 600, 900] {
        let inst = syn(ie, 60, 30, 11);
        group.bench_with_input(BenchmarkId::from_parameter(ie), &inst, |b, inst| {
            b.iter(|| black_box(is_cr(&inst.spec)))
        });
    }
    group.finish();
}

fn bench_grounding_reuse(c: &mut Criterion) {
    // the chase-only cost once Γ is pre-computed — this is what every
    // candidate-target `check` pays inside the top-k algorithms
    let inst = syn(300, 60, 30, 13);
    let orders = AccuracyOrders::new(&inst.spec.ie);
    let grounding = ground(&inst.spec, &orders);
    c.bench_function("iscr/chase_with_precomputed_grounding", |b| {
        b.iter(|| {
            black_box(chase_with_grounding(
                &inst.spec,
                &grounding,
                &inst.spec.initial_target,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_paper_example,
    bench_real_like,
    bench_syn_scaling,
    bench_grounding_reuse
);
criterion_main!(benches);
