//! `incremental`: streaming update batches vs full re-repair.
//!
//! The incremental engine's claim is that a small update batch should cost a
//! small fraction of re-repairing the whole corpus.  This bench replays a
//! `Med`-shaped update stream (insert/delete/master-append mix,
//! `relacc_datagen::streaming`) two ways per batch: through
//! [`IncrementalEngine::apply`] + [`IncrementalEngine::snapshot`] (dirty
//! blocks only, snapshot reassembled from the block cache), and through a
//! from-scratch [`BatchEngine::repair_relation`] over the same relation state
//! under the same evolved plan.
//!
//! Besides the group output, the run writes the machine-readable
//! `BENCH_incremental.json` (median ms per batch both ways, the
//! incremental-vs-full speedup, the dirty fractions of the measured batches)
//! at the workspace root; smoke runs (`RELACC_BENCH_SMOKE=1`) write under
//! `target/` so CI can never clobber the committed measurements.  The
//! committed numbers are gated by `tools/bench_gate`
//! (`incremental_vs_full_speedup ≥ 3`).

use criterion::{criterion_group, Criterion};
use relacc_bench::{bench_output_path, smoke_mode as smoke};
use relacc_datagen::streaming::{med_stream, StreamConfig, StreamOp, UpdateStream};
use relacc_engine::{BatchEngine, IncrementalEngine};
use relacc_resolve::{BlockingStrategy, ResolveConfig};
use std::hint::black_box;
use std::time::Instant;

fn stream() -> UpdateStream {
    let scale = if smoke() { 0.01 } else { 0.05 };
    let config = StreamConfig {
        n_batches: if smoke() { 2 } else { 10 },
        inserts_per_batch: 4,
        deletes_per_batch: 2,
        master_appends_per_batch: 2,
        fresh_entity_rate: 0.25,
        seed: 77,
        ..StreamConfig::default()
    };
    med_stream(scale, 7, &config)
}

fn resolve_config(stream: &UpdateStream) -> ResolveConfig {
    ResolveConfig::on_attrs(stream.match_attrs.clone()).with_strategy(BlockingStrategy::ExactKey)
}

fn open_engine(stream: &UpdateStream, threads: usize) -> IncrementalEngine {
    let engine = BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate")
    .with_threads(threads);
    IncrementalEngine::open(
        engine,
        stream.name.clone(),
        &stream.relation,
        resolve_config(stream),
    )
}

/// Group output: one update batch through the incremental path vs a full
/// re-repair of the same corpus state (both single-threaded, so the numbers
/// compare algorithmic work, not scheduling).
fn bench_batch(c: &mut Criterion) {
    let stream = stream();
    let resolve = resolve_config(&stream);
    let incremental = open_engine(&stream, 1);
    let relation = incremental.relation().snapshot();
    let mut group = c.benchmark_group("incremental/med");
    group.sample_size(if smoke() { 1 } else { 10 });
    group.bench_function("snapshot_assembly", |b| {
        b.iter(|| black_box(incremental.snapshot()))
    });
    group.bench_function("full_rerepair", |b| {
        b.iter(|| black_box(incremental.engine().repair_relation(&relation, &resolve)))
    });
    group.finish();
}

criterion_group!(benches, bench_batch);

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    if samples.is_empty() {
        return 0.0;
    }
    samples[samples.len() / 2]
}

fn incremental_report() {
    let stream = stream();
    let resolve = resolve_config(&stream);
    let mut engine = open_engine(&stream, 1);
    let seed_entities = engine.snapshot().report.entities.len();

    let mut incremental_ms: Vec<f64> = Vec::new();
    let mut full_ms: Vec<f64> = Vec::new();
    let mut dirty_fractions: Vec<f64> = Vec::new();
    for op in &stream.ops {
        let start = Instant::now();
        let outcome = match op {
            StreamOp::Rows(batch) => engine.apply(batch).expect("scripted batches stay valid"),
            StreamOp::MasterAppend(rows) => engine
                .apply_master_append(0, rows.clone())
                .expect("scripted appends stay valid"),
        };
        let snapshot = engine.snapshot();
        incremental_ms.push(start.elapsed().as_secs_f64() * 1e3);

        let total = outcome.entities_rerepaired + outcome.entities_reused;
        dirty_fractions.push(outcome.entities_rerepaired as f64 / total.max(1) as f64);

        let relation = engine.relation().snapshot();
        let start = Instant::now();
        let full = engine.engine().repair_relation(&relation, &resolve);
        full_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            snapshot.report.entities.len(),
            full.report.entities.len(),
            "incremental and full disagree on the entity count"
        );
    }

    let stats = engine.stats().clone();
    let entities = engine.snapshot().report.entities.len();
    let batches = stream.ops.len();
    let inc_median = median(&mut incremental_ms);
    let full_median = median(&mut full_ms);
    let speedup = if inc_median > 0.0 {
        full_median / inc_median
    } else {
        0.0
    };
    let avg_dirty = dirty_fractions.iter().sum::<f64>() / dirty_fractions.len().max(1) as f64;
    let max_dirty = dirty_fractions.iter().cloned().fold(0.0f64, f64::max);

    println!(
        "incremental/med: {batches} updates over {seed_entities}->{entities} entities — \
         incremental {inc_median:.2} ms/batch, full {full_median:.2} ms/batch \
         ({speedup:.1}x), dirty fraction avg {avg_dirty:.3} max {max_dirty:.3}"
    );

    let json = format!(
        "{{\n  \"bench\": \"incremental\",\n  \"corpus\": \"med\",\n  \
         \"entities\": {entities},\n  \"batches\": {batches},\n  \
         \"avg_dirty_fraction\": {avg_dirty:.4},\n  \
         \"max_dirty_fraction\": {max_dirty:.4},\n  \
         \"incremental_ms_per_batch_median\": {inc_median:.3},\n  \
         \"full_ms_per_batch_median\": {full_median:.3},\n  \
         \"incremental_vs_full_speedup\": {speedup:.2},\n  \
         \"entities_rerepaired_total\": {},\n  \
         \"entities_reused_total\": {},\n  \
         \"smoke\": {}\n}}\n",
        stats.entities_rerepaired,
        stats.entities_reused,
        smoke(),
    );
    let path = bench_output_path(smoke(), "BENCH_incremental.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("incremental: wrote {}", path.display()),
        Err(err) => eprintln!("incremental: could not write {}: {err}", path.display()),
    }
}

fn main() {
    benches();
    incremental_report();
}
