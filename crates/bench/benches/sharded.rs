//! `sharded`: per-batch apply cost of a [`ShardedEngine`] vs a single
//! [`IncrementalEngine`] on a hot-shard-skewed Med update stream.
//!
//! The sharded claim: a row batch only costs work **in the shards it
//! touches**.  A single incremental engine re-scans the whole corpus'
//! block membership per update; a sharded engine routes the batch by
//! blocking key and the untouched shards do nothing at all.  The replayed
//! stream uses the hot-shard skew mix (`StreamConfig::with_hot_mix`), the
//! concentrated-update regime sharding is for — a heavy streaming workload
//! hammering a hot entity while the rest of the corpus idles (deletes
//! offset inserts, so the hot block stays seed-sized and the per-batch
//! repair work is constant while the corpus scan is what scales).
//!
//! Both engines run single-threaded, so `sharded_vs_single_speedup`
//! compares algorithmic work (how much of the corpus an update touches),
//! not scheduling luck — shard applies still being independent, the
//! speedup composes with the worker pool on multi-core hosts.
//!
//! The run replays the stream once through both engines (an apply consumes
//! its batch, so per-batch timings come from this single replay), writes
//! the machine-readable `BENCH_sharded.json` at the workspace root (smoke
//! runs write under `target/`), and then reports snapshot-assembly timings
//! as a criterion group over the final state.  The committed numbers are
//! gated by `tools/bench_gate` (`sharded_vs_single_speedup ≥ 2` at 4
//! shards).

use criterion::Criterion;
use relacc_bench::{bench_output_path, smoke_mode as smoke};
use relacc_datagen::streaming::{med_stream, StreamConfig, StreamOp, UpdateStream};
use relacc_engine::{BatchEngine, IncrementalEngine, ShardedEngine};
use relacc_resolve::{BlockingStrategy, ResolveConfig};
use std::hint::black_box;
use std::time::Instant;

const SHARDS: usize = 4;

fn stream() -> UpdateStream {
    let scale = if smoke() { 0.01 } else { 0.75 };
    let config = StreamConfig {
        n_batches: if smoke() { 2 } else { 12 },
        inserts_per_batch: 3,
        deletes_per_batch: 3,
        master_appends_per_batch: 0,
        fresh_entity_rate: 0.0,
        seed: 93,
        ..StreamConfig::default()
    }
    .with_hot_mix(1, 0.98);
    med_stream(scale, 11, &config)
}

fn resolve_config(stream: &UpdateStream) -> ResolveConfig {
    ResolveConfig::on_attrs(stream.match_attrs.clone()).with_strategy(BlockingStrategy::ExactKey)
}

fn batch_engine(stream: &UpdateStream) -> BatchEngine {
    BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate")
    .with_threads(1)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    if samples.is_empty() {
        return 0.0;
    }
    samples[samples.len() / 2]
}

/// Replay the stream through both engines, write `BENCH_sharded.json`, and
/// return the engines in their final state for the snapshot group.
fn sharded_report() -> (IncrementalEngine, ShardedEngine) {
    let stream = stream();
    let resolve = resolve_config(&stream);
    let mut single = IncrementalEngine::open(
        batch_engine(&stream),
        stream.name.clone(),
        &stream.relation,
        resolve.clone(),
    );
    let mut sharded = ShardedEngine::open(
        batch_engine(&stream),
        stream.name.clone(),
        &stream.relation,
        resolve,
        SHARDS,
    );

    let mut single_ms: Vec<f64> = Vec::new();
    let mut sharded_ms: Vec<f64> = Vec::new();
    for op in &stream.ops {
        let StreamOp::Rows(batch) = op else {
            continue;
        };
        let start = Instant::now();
        single.apply(batch).expect("scripted batches stay valid");
        single_ms.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        sharded.apply(batch).expect("scripted batches stay valid");
        sharded_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }

    // the two engines must still be telling the same story
    let a = sharded.snapshot();
    let b = single.snapshot();
    assert_eq!(
        a.report.entities.len(),
        b.report.entities.len(),
        "sharded and single disagree on the entity count"
    );
    assert_eq!(
        a.repaired.rows(),
        b.repaired.rows(),
        "sharded and single disagree on the repaired rows"
    );

    let entities = a.report.entities.len();
    let batches = single_ms.len();
    let single_median = median(&mut single_ms);
    let sharded_median = median(&mut sharded_ms);
    let speedup = if sharded_median > 0.0 {
        single_median / sharded_median
    } else {
        0.0
    };

    println!(
        "sharded/med-hot: {batches} batches over {entities} entities at {SHARDS} shards — \
         sharded {sharded_median:.3} ms/batch, single {single_median:.3} ms/batch \
         ({speedup:.1}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"sharded\",\n  \"corpus\": \"med-hot\",\n  \
         \"shards\": {SHARDS},\n  \"entities\": {entities},\n  \
         \"batches\": {batches},\n  \
         \"sharded_ms_per_batch_median\": {sharded_median:.3},\n  \
         \"single_ms_per_batch_median\": {single_median:.3},\n  \
         \"sharded_vs_single_speedup\": {speedup:.2},\n  \
         \"smoke\": {}\n}}\n",
        smoke(),
    );
    let path = bench_output_path(smoke(), "BENCH_sharded.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("sharded: wrote {}", path.display()),
        Err(err) => eprintln!("sharded: could not write {}: {err}", path.display()),
    }
    (single, sharded)
}

/// Group output: snapshot assembly both ways over the post-stream state
/// (repeatable per iteration, unlike an apply, which consumes its batch).
fn bench_snapshot(c: &mut Criterion, single: &IncrementalEngine, sharded: &ShardedEngine) {
    let mut group = c.benchmark_group("sharded/med-hot");
    group.sample_size(10);
    group.bench_function("single_snapshot", |b| {
        b.iter(|| black_box(single.snapshot()))
    });
    group.bench_function("sharded_snapshot", |b| {
        b.iter(|| black_box(sharded.snapshot()))
    });
    group.finish();
}

fn main() {
    let (single, sharded) = sharded_report();
    let mut criterion = Criterion::default();
    bench_snapshot(&mut criterion, &single, &sharded);
}
