//! The compile-once ablation: evaluating a corpus of entities by rebuilding a
//! `Specification` (rule clone + grounding + index allocation) per entity —
//! the seed architecture — versus evaluating one pre-compiled `ChasePlan`
//! through `relacc-engine`'s batch driver, single-threaded and with one worker
//! per core.
//!
//! The workload is the datagen restaurant corpus (`Rest`, Exp-5): ~1k entity
//! instances sharing one rule set at scale 0.2.
//!
//! A second group (`batch_pipeline/repair`) compares whole-relation repair
//! end-to-end: the retired `relacc_db::batch::repair_database` pipeline
//! (resolution, then a fresh `Specification` + `is_cr` per entity over
//! statically pre-chunked worker threads — replicated inline here, since the
//! shim now delegates to the engine) against the unified
//! `BatchEngine::repair_relation` path (one compiled plan, per-worker scratch,
//! dynamic scheduling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relacc_core::chase::is_cr;
use relacc_core::Specification;
use relacc_datagen::rest::{rest, RestConfig};
use relacc_engine::BatchEngine;
use relacc_model::{DataType, EntityInstance, Schema, Value};
use relacc_resolve::{resolve_relation, BlockingStrategy, ResolveConfig};
use relacc_store::Relation;
use std::hint::black_box;
use std::sync::Arc;

fn bench_batch_pipeline(c: &mut Criterion) {
    let data = rest(&RestConfig::scaled(0.2, 99));
    let entities: Vec<EntityInstance> = data
        .restaurants
        .iter()
        .map(|r| r.instance.clone())
        .collect();
    let n = entities.len();
    assert!(
        n >= 1000,
        "the scaled Rest corpus should have >= 1k entities"
    );

    let mut group = c.benchmark_group("batch_pipeline/rest");
    group.sample_size(10);

    // The seed path: per entity, clone the rule set into a fresh
    // specification, re-ground everything, allocate a fresh index.
    group.bench_with_input(BenchmarkId::new("recompile_per_entity", n), &(), |b, ()| {
        b.iter(|| {
            let mut complete = 0usize;
            for idx in 0..n {
                let spec = data.specification(idx);
                let run = is_cr(&spec);
                if run
                    .outcome
                    .target()
                    .map(|t| t.is_complete())
                    .unwrap_or(false)
                {
                    complete += 1;
                }
            }
            black_box(complete)
        })
    });

    // The compiled path: one plan, interned entities, per-worker scratch.
    let single = BatchEngine::new(data.schema.clone(), data.rules.clone(), vec![])
        .expect("rest rules validate")
        .with_threads(1)
        .with_suggestion_k(0);
    let mut interned = entities.clone();
    single.intern_entities(&mut interned);
    group.bench_with_input(
        BenchmarkId::new("compiled_plan_1_thread", n),
        &interned,
        |b, interned| b.iter(|| black_box(single.run(interned)).complete),
    );

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let parallel = BatchEngine::new(data.schema.clone(), data.rules.clone(), vec![])
        .expect("rest rules validate")
        .with_threads(cores)
        .with_suggestion_k(0);
    group.bench_with_input(
        BenchmarkId::new(format!("compiled_plan_{cores}_threads"), n),
        &interned,
        |b, interned| b.iter(|| black_box(parallel.run(interned)).complete),
    );
    group.finish();
}

/// The retired `relacc_db::batch` pipeline, replicated inline: resolve, build
/// one `Specification` per entity (rule refcount bump but fresh grounding and
/// index per entity), fan the entities out over *statically pre-chunked*
/// worker threads, count completely deduced targets.
fn legacy_chunked_repair(
    relation: &Relation,
    rules: &relacc_core::RuleSet,
    resolve: &ResolveConfig,
    threads: usize,
) -> usize {
    let resolved = resolve_relation(relation, resolve);
    let shared_rules = Arc::new(rules.clone());
    let shared_masters = Arc::new(Vec::new());
    let specs: Vec<Specification> = resolved
        .entities
        .iter()
        .map(|ie| Specification::shared(ie.clone(), shared_rules.clone(), shared_masters.clone()))
        .collect();
    if threads <= 1 || specs.len() <= 1 {
        return specs
            .iter()
            .filter(|spec| {
                is_cr(spec)
                    .outcome
                    .target()
                    .map(|t| t.is_complete())
                    .unwrap_or(false)
            })
            .count();
    }
    let threads = threads.min(specs.len());
    let chunk_size = specs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .filter(|spec| {
                            is_cr(spec)
                                .outcome
                                .target()
                                .map(|t| t.is_complete())
                                .unwrap_or(false)
                        })
                        .count()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("legacy batch worker panicked"))
            .sum()
    })
}

/// Whole-relation repair: the legacy chunked/recompiling path against the
/// unified engine path, on the Rest corpus flattened to a dirty relation.
fn bench_repair_paths(c: &mut Criterion) {
    let data = rest(&RestConfig::scaled(0.05, 99));
    let schema = Schema::builder("listing")
        .attr("source", DataType::Text)
        .attr("snapshot", DataType::Int)
        .attr("closed", DataType::Bool)
        .attr("rname", DataType::Text)
        .build();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for restaurant in &data.restaurants {
        for tuple in restaurant.instance.tuples() {
            let mut row = tuple.values().to_vec();
            row.push(Value::text(restaurant.name.clone()));
            rows.push(row);
        }
    }
    let relation = Relation::from_rows(schema.clone(), rows).expect("listing rows conform");
    let resolve =
        ResolveConfig::on_attrs(vec!["rname".into()]).with_strategy(BlockingStrategy::ExactKey);
    let n = data.restaurants.len();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut thread_counts = vec![1usize];
    if cores > 1 {
        thread_counts.push(cores);
    }
    let mut group = c.benchmark_group("batch_pipeline/repair");
    group.sample_size(10);
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::new(format!("legacy_chunked_{threads}_threads"), n),
            &(),
            |b, ()| {
                b.iter(|| {
                    black_box(legacy_chunked_repair(
                        &relation,
                        &data.rules,
                        &resolve,
                        threads,
                    ))
                })
            },
        );
        let engine = BatchEngine::new(schema.clone(), data.rules.clone(), vec![])
            .expect("rest rules validate against the extended schema")
            .with_threads(threads)
            .with_suggestion_k(0);
        group.bench_with_input(
            BenchmarkId::new(format!("unified_engine_{threads}_threads"), n),
            &(),
            |b, ()| {
                b.iter(|| {
                    black_box(engine.repair_relation(&relation, &resolve))
                        .report
                        .complete
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_pipeline, bench_repair_paths);
criterion_main!(benches);
