//! The compile-once ablation: evaluating a corpus of entities by rebuilding a
//! `Specification` (rule clone + grounding + index allocation) per entity —
//! the seed architecture — versus evaluating one pre-compiled `ChasePlan`
//! through `relacc-engine`'s batch driver, single-threaded and with one worker
//! per core.
//!
//! The workload is the datagen restaurant corpus (`Rest`, Exp-5): ~1k entity
//! instances sharing one rule set at scale 0.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relacc_core::chase::is_cr;
use relacc_datagen::rest::{rest, RestConfig};
use relacc_engine::BatchEngine;
use relacc_model::EntityInstance;
use std::hint::black_box;

fn bench_batch_pipeline(c: &mut Criterion) {
    let data = rest(&RestConfig::scaled(0.2, 99));
    let entities: Vec<EntityInstance> = data
        .restaurants
        .iter()
        .map(|r| r.instance.clone())
        .collect();
    let n = entities.len();
    assert!(
        n >= 1000,
        "the scaled Rest corpus should have >= 1k entities"
    );

    let mut group = c.benchmark_group("batch_pipeline/rest");
    group.sample_size(10);

    // The seed path: per entity, clone the rule set into a fresh
    // specification, re-ground everything, allocate a fresh index.
    group.bench_with_input(BenchmarkId::new("recompile_per_entity", n), &(), |b, ()| {
        b.iter(|| {
            let mut complete = 0usize;
            for idx in 0..n {
                let spec = data.specification(idx);
                let run = is_cr(&spec);
                if run
                    .outcome
                    .target()
                    .map(|t| t.is_complete())
                    .unwrap_or(false)
                {
                    complete += 1;
                }
            }
            black_box(complete)
        })
    });

    // The compiled path: one plan, interned entities, per-worker scratch.
    let single = BatchEngine::new(data.schema.clone(), data.rules.clone(), vec![])
        .expect("rest rules validate")
        .with_threads(1)
        .with_suggestion_k(0);
    let mut interned = entities.clone();
    single.intern_entities(&mut interned);
    group.bench_with_input(
        BenchmarkId::new("compiled_plan_1_thread", n),
        &interned,
        |b, interned| b.iter(|| black_box(single.run(interned)).complete),
    );

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let parallel = BatchEngine::new(data.schema.clone(), data.rules.clone(), vec![])
        .expect("rest rules validate")
        .with_threads(cores)
        .with_suggestion_k(0);
    group.bench_with_input(
        BenchmarkId::new(format!("compiled_plan_{cores}_threads"), n),
        &interned,
        |b, interned| b.iter(|| black_box(parallel.run(interned)).complete),
    );
    group.finish();
}

criterion_group!(benches, bench_batch_pipeline);
criterion_main!(benches);
