//! `topk_check`: from-scratch vs checkpointed candidate checks.
//!
//! The `check` procedure dominates the top-k algorithms' runtime (Section 6).
//! This bench measures one check both ways — `CandidateSearch::check_full`
//! (re-chase the whole grounding) vs `CandidateSearch::check` (resume from
//! the base-run checkpoint) — on a synthetic family varying `|Z|` and the
//! candidate-domain size, and on the Rest corpus, single- and multi-threaded.
//!
//! Besides the human-readable group output, the run writes the machine-
//! readable `BENCH_topk.json` at the workspace root (median ns per check,
//! checks/sec at 1/N threads, delta-vs-full replayed-step counts and the
//! measured speedup ratio on Rest) so the perf trajectory is tracked across
//! PRs.  Set `RELACC_BENCH_SMOKE=1` for a one-iteration smoke run — smoke
//! reports land under `target/` so they never clobber the committed numbers
//! (see `relacc_bench::bench_output_path`).

use criterion::{criterion_group, BenchmarkId, Criterion};
use relacc_core::chase::chase_with_grounding;
use relacc_core::rules::{Predicate, RuleSet, TupleRule};
use relacc_core::Specification;
use relacc_datagen::rest::{rest, RestConfig};
use relacc_engine::par_map_with;
use relacc_model::{CmpOp, DataType, EntityInstance, Schema, TargetTuple, Value};
use relacc_topk::{CandidateSearch, CheckScratch, PreferenceModel, TopKStats};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use relacc_bench::smoke_mode as smoke;

/// A synthetic open entity: one currency-resolved int column plus three text
/// columns, of which `m` stay open with `d` distinct values each (the other
/// text columns are constant, so ϕ9 resolves them and they leave `Z`).
fn synthetic_spec(m: usize, d: usize) -> Specification {
    let schema = Schema::builder("syn")
        .attr("cur", DataType::Int)
        .attr("z1", DataType::Text)
        .attr("z2", DataType::Text)
        .attr("z3", DataType::Text)
        .build();
    let rows: Vec<Vec<Value>> = (0..d.max(2))
        .map(|i| {
            let open = |attr: usize| {
                if attr < m {
                    Value::text(format!("v{attr}_{}", i % d))
                } else {
                    Value::text("fixed")
                }
            };
            vec![Value::Int(i as i64), open(0), open(1), open(2)]
        })
        .collect();
    let ie = EntityInstance::from_rows(schema.clone(), rows).unwrap();
    let rules = RuleSet::from_rules([TupleRule::new(
        "cur",
        vec![Predicate::cmp_attrs(schema.expect_attr("cur"), CmpOp::Lt)],
        schema.expect_attr("cur"),
    )]);
    Specification::new(ie, rules)
}

/// Up to `cap` complete candidates from the cross-product of the domains.
fn candidates_of(search: &CandidateSearch<'_>, cap: usize) -> Vec<TargetTuple> {
    let mut combos: Vec<Vec<Value>> = vec![Vec::new()];
    for domain in &search.domains {
        let mut next = Vec::new();
        'outer: for prefix in &combos {
            for entry in domain {
                let mut assignment = prefix.clone();
                assignment.push(entry.item.clone());
                next.push(assignment);
                if next.len() >= cap {
                    break 'outer;
                }
            }
        }
        combos = next;
    }
    combos
        .into_iter()
        .filter(|z| z.len() == search.arity())
        .map(|z| search.assemble(&z))
        .collect()
}

fn bench_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_check/synthetic");
    group.sample_size(if smoke() { 1 } else { 15 });
    for m in [1usize, 2, 3] {
        for d in [4usize, 16] {
            let spec = synthetic_spec(m, d);
            let preference = PreferenceModel::occurrence(&spec, 5);
            let search = CandidateSearch::prepare(&spec, preference).expect("Church-Rosser");
            assert_eq!(search.arity(), m, "|Z| must match the requested m");
            let candidates = candidates_of(&search, 32);
            let label = format!("z{m}_d{d}");
            group.bench_with_input(
                BenchmarkId::new("full", &label),
                &candidates,
                |b, candidates| {
                    let mut stats = TopKStats::default();
                    b.iter(|| {
                        for candidate in candidates {
                            black_box(search.check_full(candidate, &mut stats));
                        }
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("delta", &label),
                &candidates,
                |b, candidates| {
                    let mut stats = TopKStats::default();
                    let mut scratch = CheckScratch::new();
                    b.iter(|| {
                        for candidate in candidates {
                            black_box(search.check(candidate, &mut scratch, &mut stats));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_synthetic);

/// One open Rest entity prepared for checking: specification + enumerated
/// candidates.
struct RestEntity {
    spec: Specification,
    candidates: Vec<TargetTuple>,
}

fn rest_entities() -> Vec<RestEntity> {
    let scale = if smoke() { 0.005 } else { 0.02 };
    let data = rest(&RestConfig::scaled(scale, 11));
    let rules = Arc::new(data.rules.clone());
    let mut out = Vec::new();
    for restaurant in &data.restaurants {
        let spec = Specification::new(restaurant.instance.clone(), rules.clone());
        let preference = PreferenceModel::occurrence(&spec, 5);
        let Ok(search) = CandidateSearch::prepare(&spec, preference) else {
            continue;
        };
        if search.z.is_empty() {
            continue;
        }
        let candidates = candidates_of(&search, 24);
        if candidates.is_empty() {
            continue;
        }
        drop(search);
        out.push(RestEntity { spec, candidates });
        if out.len() >= if smoke() { 4 } else { 48 } {
            break;
        }
    }
    out
}

/// Median of timing samples (ns per check).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    if samples.is_empty() {
        return 0.0;
    }
    samples[samples.len() / 2]
}

/// Measure ns/check over the Rest entities with `runs` samples.
fn measure_rest(entities: &[RestEntity], runs: usize, delta: bool) -> (f64, usize, usize) {
    // prepare searches once: the base chase / checkpoint capture is shared by
    // all candidates of an entity in both modes
    let searches: Vec<CandidateSearch<'_>> = entities
        .iter()
        .map(|e| {
            let preference = PreferenceModel::occurrence(&e.spec, 5);
            CandidateSearch::prepare(&e.spec, preference).expect("Rest entities are CR")
        })
        .collect();
    let mut samples = Vec::with_capacity(runs);
    let mut stats = TopKStats::default();
    let mut scratch = CheckScratch::new();
    let mut checks = 0usize;
    for _ in 0..runs {
        let start = Instant::now();
        for (entity, search) in entities.iter().zip(searches.iter()) {
            for candidate in &entity.candidates {
                if delta {
                    black_box(search.check(candidate, &mut scratch, &mut stats));
                } else {
                    black_box(search.check_full(candidate, &mut stats));
                }
                checks += 1;
            }
        }
        samples.push(start.elapsed().as_nanos() as f64);
    }
    let per_run_checks: usize = entities.iter().map(|e| e.candidates.len()).sum();
    let mut per_check: Vec<f64> = samples
        .iter()
        .map(|total| total / per_run_checks.max(1) as f64)
        .collect();
    (median(&mut per_check), checks, stats.delta_steps_replayed)
}

/// Checks/sec over the corpus with the engine's worker pool.  The corpus is
/// repeated so the task list is long enough to amortize thread startup (one
/// task = prepare one entity's search, then check all its candidates — the
/// batch engine's suggestion-path shape).
fn measure_parallel(entities: &[RestEntity], threads: usize) -> f64 {
    let passes = if smoke() { 1 } else { 40 };
    let tasks: Vec<&RestEntity> = (0..passes).flat_map(|_| entities.iter()).collect();
    let start = Instant::now();
    let counts = par_map_with(&tasks, threads, CheckScratch::new, |scratch, _, entity| {
        let preference = PreferenceModel::occurrence(&entity.spec, 5);
        let search =
            CandidateSearch::prepare(&entity.spec, preference).expect("Rest entities are CR");
        let mut stats = TopKStats::default();
        let mut done = 0usize;
        for candidate in &entity.candidates {
            black_box(search.check(candidate, scratch, &mut stats));
            done += 1;
        }
        done
    });
    let total: usize = counts.iter().sum();
    total as f64 / start.elapsed().as_secs_f64()
}

/// Total steps a from-scratch check replays (for the delta-vs-full step
/// comparison): every check re-considers the steps of the whole chase.
fn full_steps(entities: &[RestEntity]) -> usize {
    let mut total = 0usize;
    for entity in entities {
        let orders = relacc_model::AccuracyOrders::new(&entity.spec.ie);
        let grounding = relacc_core::chase::ground(&entity.spec, &orders);
        for candidate in &entity.candidates {
            let run = chase_with_grounding(&entity.spec, &grounding, candidate);
            total += run.stats.steps_considered;
        }
    }
    total
}

fn json_escape_free(label: &str) -> &str {
    debug_assert!(!label.contains('"') && !label.contains('\\'));
    label
}

fn rest_report() {
    let entities = rest_entities();
    if entities.is_empty() {
        eprintln!("topk_check/rest: no open entities generated, skipping JSON report");
        return;
    }
    let runs = if smoke() { 1 } else { 7 };
    let (full_ns, _, _) = measure_rest(&entities, runs, false);
    let (delta_ns, delta_checks, delta_steps) = measure_rest(&entities, runs, true);
    let full_step_total = full_steps(&entities);
    let candidate_total: usize = entities.iter().map(|e| e.candidates.len()).sum();
    let ratio = if delta_ns > 0.0 {
        full_ns / delta_ns
    } else {
        0.0
    };
    let threads = 4usize;
    let single = measure_parallel(&entities, 1);
    let multi = measure_parallel(&entities, threads);

    println!(
        "topk_check/rest: {candidate_total} candidates over {} entities — \
         full {full_ns:.0} ns/check, delta {delta_ns:.0} ns/check ({ratio:.1}x), \
         {single:.0} checks/s @1 thread, {multi:.0} checks/s @{threads} threads",
        entities.len()
    );

    let corpus = json_escape_free("rest");
    let json = format!(
        "{{\n  \"bench\": \"topk_check\",\n  \"corpus\": \"{corpus}\",\n  \
         \"entities\": {},\n  \"candidates\": {candidate_total},\n  \
         \"full_ns_per_check_median\": {full_ns:.1},\n  \
         \"delta_ns_per_check_median\": {delta_ns:.1},\n  \
         \"delta_vs_full_speedup\": {ratio:.2},\n  \
         \"checks_per_sec_1_thread\": {single:.1},\n  \
         \"checks_per_sec_{threads}_threads\": {multi:.1},\n  \
         \"full_steps_considered_total\": {full_step_total},\n  \
         \"delta_steps_replayed_total\": {},\n  \
         \"delta_checks_measured\": {delta_checks},\n  \
         \"smoke\": {}\n}}\n",
        entities.len(),
        delta_steps,
        smoke(),
    );
    let path = relacc_bench::bench_output_path(smoke(), "BENCH_topk.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("topk_check: wrote {}", path.display()),
        Err(err) => eprintln!("topk_check: could not write {}: {err}", path.display()),
    }
}

fn main() {
    benches();
    rest_report();
}
