//! Benchmarks regenerating Fig. 6(i)–(l): elapsed time of RankJoinCT, TopKCT
//! and TopKCTh on the synthetic `Syn` workload while varying ‖Ie‖, ‖Σ‖, ‖Im‖
//! and k.  Parameter values are scaled down from the paper's so a full
//! `cargo bench` stays in the minutes range; pass `--full-exp4` to the
//! `experiments` binary for the paper-sized sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relacc_datagen::workloads::syn;
use relacc_topk::{rank_join_ct, topkct, topkcth, CandidateSearch, PreferenceModel};
use std::hint::black_box;

const BASE_IE: usize = 180;
const BASE_IM: usize = 60;
const BASE_SIGMA: usize = 30;
const BASE_K: usize = 15;

fn run_algorithm(spec: &relacc_core::Specification, k: usize, which: &str) {
    let preference = PreferenceModel::occurrence(spec, k);
    let search = CandidateSearch::prepare(spec, preference).expect("Syn specs are Church-Rosser");
    let result = match which {
        "rankjoinct" => rank_join_ct(&search),
        "topkct" => topkct(&search),
        _ => topkcth(&search),
    };
    black_box(result);
}

fn bench_vary_ie(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6i/vary_ie");
    group.sample_size(10);
    for ie in [60usize, 120, 180, 240] {
        let inst = syn(ie, BASE_IM, BASE_SIGMA, 21);
        for algo in ["rankjoinct", "topkct", "topkcth"] {
            group.bench_with_input(BenchmarkId::new(algo, ie), &inst, |b, inst| {
                b.iter(|| run_algorithm(&inst.spec, BASE_K, algo))
            });
        }
    }
    group.finish();
}

fn bench_vary_sigma(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6j/vary_sigma");
    group.sample_size(10);
    for sigma in [10usize, 30, 50] {
        let inst = syn(BASE_IE, BASE_IM, sigma, 22);
        for algo in ["rankjoinct", "topkct", "topkcth"] {
            group.bench_with_input(BenchmarkId::new(algo, sigma), &inst, |b, inst| {
                b.iter(|| run_algorithm(&inst.spec, BASE_K, algo))
            });
        }
    }
    group.finish();
}

fn bench_vary_im(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6k/vary_im");
    group.sample_size(10);
    for im in [20usize, 60, 100] {
        let inst = syn(BASE_IE, im, BASE_SIGMA, 23);
        for algo in ["rankjoinct", "topkct", "topkcth"] {
            group.bench_with_input(BenchmarkId::new(algo, im), &inst, |b, inst| {
                b.iter(|| run_algorithm(&inst.spec, BASE_K, algo))
            });
        }
    }
    group.finish();
}

fn bench_vary_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6l/vary_k");
    group.sample_size(10);
    let inst = syn(BASE_IE, BASE_IM, BASE_SIGMA, 24);
    for k in [5usize, 15, 25] {
        for algo in ["rankjoinct", "topkct", "topkcth"] {
            group.bench_with_input(BenchmarkId::new(algo, k), &inst, |b, inst| {
                b.iter(|| run_algorithm(&inst.spec, k, algo))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vary_ie,
    bench_vary_sigma,
    bench_vary_im,
    bench_vary_k
);
criterion_main!(benches);
