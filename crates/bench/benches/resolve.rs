//! `resolve`: pairwise-resolution cost with the exact fingerprint cascade
//! vs. the uncascaded baseline, on the shapes where resolution dominates.
//!
//! The cascade claim: most candidate pairs inside a hot block are *provably*
//! below the match threshold from cheap per-record fingerprints (length and
//! token counts, then packed char/bigram/token popcounts), so they never
//! reach the alignment stage — and because the bounds dominate the true
//! similarity, the clustering is bit-identical to the baseline's (the run
//! asserts this before timing anything).
//!
//! Two corpora:
//!
//! * `large_blocks` (the adversarial shape from `relacc_datagen::adversarial`):
//!   a few hot blocking keys shared by many long-string rows, a quarter
//!   near-duplicates, the rest unrelated payloads of the same shape (the
//!   dirty-corpus regime: most hot-block pairs are true non-matches).  This
//!   is the gated number — `resolve_speedup` is the uncascaded / cascaded
//!   median over full `resolve_relation` runs, and `pruned_fraction` is the
//!   share of candidate pairs the cascade retired before alignment.
//! * `Rest` (the multi-source restaurant stream): the paper-shaped workload,
//!   reported but not floored — its small blocks leave less to prune, which
//!   is exactly the regime the report should document.
//!
//! Both sides of the comparison share the same Myers/DP alignment kernel, so
//! `resolve_speedup` isolates what the cascade prunes, not the bit-parallel
//! Levenshtein win (which benefits baseline and cascade alike).
//!
//! The run writes the machine-readable `BENCH_resolve.json` at the workspace
//! root (smoke runs write under `target/`), gated by `tools/bench_gate`
//! (`resolve_speedup ≥ 3`, `pruned_fraction ≥ 0.5`).  A criterion group then
//! reports the full `BatchEngine::repair_relation` pipeline over the Rest
//! corpus at 1 and 4 repair threads, cascade on — placing the resolution win
//! inside the end-to-end repair cost it actually amortizes.

use criterion::Criterion;
use relacc_bench::{bench_output_path, smoke_mode as smoke};
use relacc_datagen::adversarial::{large_blocks, LargeBlocksConfig};
use relacc_datagen::streaming::{rest_stream, StreamConfig, UpdateStream};
use relacc_engine::BatchEngine;
use relacc_resolve::{resolve_relation, ResolveConfig};
use relacc_store::Relation;
use std::hint::black_box;
use std::time::Instant;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    if samples.is_empty() {
        return 0.0;
    }
    samples[samples.len() / 2]
}

/// Median wall time of `resolve_relation(relation, config)` in milliseconds.
fn time_resolve(relation: &Relation, config: &ResolveConfig, repeats: usize) -> f64 {
    let mut ms: Vec<f64> = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        black_box(resolve_relation(relation, config));
        ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    median(&mut ms)
}

fn rest() -> UpdateStream {
    // 0.02 scale ≈ 7.6k listing rows; under the default 6-char-prefix
    // blocking every `restaurant…` name lands in ONE hot block (~29M
    // candidate pairs), which is exactly the regime worth reporting — and
    // about as much O(block²) work as a single-core run should pay per
    // measurement.
    let scale = if smoke() { 0.002 } else { 0.02 };
    rest_stream(scale, 9, &StreamConfig::default())
}

/// Time both corpora, write `BENCH_resolve.json`, and return the Rest stream
/// for the criterion repair group.
fn resolve_report() -> UpdateStream {
    let repeats = if smoke() { 1 } else { 7 };

    // --- large_blocks: the gated adversarial shape ---
    let data = large_blocks(&if smoke() {
        LargeBlocksConfig::tiny(7)
    } else {
        LargeBlocksConfig {
            near_dup_rate: 0.25,
            ..LargeBlocksConfig::default()
        }
    });
    let cascade_config =
        ResolveConfig::on_attrs(data.match_attrs.clone()).with_threshold(data.threshold);
    let baseline_config = cascade_config.clone().without_cascade();

    // the cascade must be telling the baseline's story before it is timed
    let resolved = resolve_relation(&data.relation, &cascade_config);
    let baseline = resolve_relation(&data.relation, &baseline_config);
    assert_eq!(
        resolved.members, baseline.members,
        "cascade and baseline disagree on the clustering"
    );
    let stats = resolved.stats;
    let pruned_fraction = stats.pruned_fraction();

    let cascade_ms = time_resolve(&data.relation, &cascade_config, repeats);
    let baseline_ms = time_resolve(&data.relation, &baseline_config, repeats);
    let speedup = if cascade_ms > 0.0 {
        baseline_ms / cascade_ms
    } else {
        0.0
    };

    let rows = data.relation.len();
    let pairs = stats.pairs_considered;
    println!(
        "resolve/large_blocks: {rows} rows, {pairs} pairs, {:.1}% pruned — \
         cascade {cascade_ms:.3} ms, baseline {baseline_ms:.3} ms ({speedup:.1}x)",
        pruned_fraction * 100.0
    );

    // --- Rest: the paper-shaped workload, reported not gated ---
    let stream = rest();
    let rest_repeats = if smoke() { 1 } else { 3 };
    let rest_cascade = ResolveConfig::on_attrs(stream.match_attrs.clone());
    let rest_baseline = rest_cascade.clone().without_cascade();
    let rest_stats = resolve_relation(&stream.relation, &rest_cascade).stats;
    let rest_cascade_ms = time_resolve(&stream.relation, &rest_cascade, rest_repeats);
    let rest_baseline_ms = time_resolve(&stream.relation, &rest_baseline, rest_repeats);
    let rest_speedup = if rest_cascade_ms > 0.0 {
        rest_baseline_ms / rest_cascade_ms
    } else {
        0.0
    };
    println!(
        "resolve/rest: {} rows, {} pairs, {:.1}% pruned — \
         cascade {rest_cascade_ms:.3} ms, baseline {rest_baseline_ms:.3} ms ({rest_speedup:.1}x)",
        stream.relation.len(),
        rest_stats.pairs_considered,
        rest_stats.pruned_fraction() * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"resolve\",\n  \"corpus\": \"large_blocks\",\n  \
         \"rows\": {rows},\n  \"pairs\": {pairs},\n  \
         \"pruned_fraction\": {pruned_fraction:.3},\n  \"dp_runs\": {},\n  \
         \"cascade_ms_median\": {cascade_ms:.3},\n  \
         \"baseline_ms_median\": {baseline_ms:.3},\n  \
         \"resolve_speedup\": {speedup:.2},\n  \
         \"rest_pairs\": {},\n  \"rest_pruned_fraction\": {:.3},\n  \
         \"rest_cascade_ms_median\": {rest_cascade_ms:.3},\n  \
         \"rest_baseline_ms_median\": {rest_baseline_ms:.3},\n  \
         \"rest_speedup\": {rest_speedup:.2},\n  \"smoke\": {}\n}}\n",
        stats.dp_runs,
        rest_stats.pairs_considered,
        rest_stats.pruned_fraction(),
        smoke(),
    );
    let path = bench_output_path(smoke(), "BENCH_resolve.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("resolve: wrote {}", path.display()),
        Err(err) => eprintln!("resolve: could not write {}: {err}", path.display()),
    }
    stream
}

/// Group output: the full repair pipeline (resolution included) over the
/// Rest corpus at 1 and 4 repair threads, cascade on — resolution cost in
/// its end-to-end context.
fn bench_repair(c: &mut Criterion, stream: &UpdateStream) {
    let resolve = ResolveConfig::on_attrs(stream.match_attrs.clone());
    let mut group = c.benchmark_group("resolve/rest-repair");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let engine = BatchEngine::new(
            stream.relation.schema().clone(),
            stream.rules.clone(),
            stream.master.clone().into_iter().collect(),
        )
        .expect("stream rules validate")
        .with_threads(threads);
        group.bench_function(format!("repair_{threads}_threads"), |b| {
            b.iter(|| black_box(engine.repair_relation(&stream.relation, &resolve)))
        });
    }
    group.finish();
}

fn main() {
    let stream = resolve_report();
    let mut criterion = Criterion::default();
    bench_repair(&mut criterion, &stream);
}
