//! `net`: the price of the wire — generation-pinned point reads served over
//! loopback TCP ([`relacc_net::NetClient`]) vs the same reads answered
//! in-process ([`relacc_serve::Server`]), on a mixed read/write Med stream.
//!
//! Both paths hit the identical epoch hub, so the measured gap is exactly
//! the transport: frame encode/decode, one request/response round trip over
//! `127.0.0.1`, and the codec's allocation of the reply.  Every paired read
//! is also compared for **bit identity** (the codec ships floats as raw
//! IEEE-754 bits), and the `mismatches` count is gated to 0 by
//! `tools/bench_gate` — the committed `BENCH_net.json` is a correctness
//! artifact first and a latency report second.  `tcp_reads_per_sec` has a
//! generous floor so a pathological transport regression (e.g. a lost
//! flush turning every read into a socket-timeout wait) fails the gate on
//! any machine.
//!
//! A criterion group repeats both read paths over the final state.

use criterion::Criterion;
use relacc_bench::{bench_output_path, smoke_mode as smoke};
use relacc_datagen::streaming::{med_stream, StreamConfig, StreamOp, UpdateStream};
use relacc_engine::{BatchEngine, IncrementalEngine};
use relacc_net::{NetClient, NetServer};
use relacc_resolve::{BlockingStrategy, ResolveConfig};
use relacc_serve::Server;
use std::hint::black_box;
use std::time::Instant;

fn stream() -> UpdateStream {
    let scale = if smoke() { 0.01 } else { 0.3 };
    let config = StreamConfig {
        n_batches: if smoke() { 2 } else { 8 },
        inserts_per_batch: 4,
        deletes_per_batch: 2,
        master_appends_per_batch: 1,
        seed: 57,
        ..StreamConfig::default()
    }
    .with_reads(if smoke() { 2 } else { 8 });
    med_stream(scale, 29, &config)
}

fn open_engine(stream: &UpdateStream) -> IncrementalEngine {
    let engine = BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate")
    .with_threads(1);
    IncrementalEngine::open(
        engine,
        stream.name.clone(),
        &stream.relation,
        ResolveConfig::on_attrs(stream.match_attrs.clone())
            .with_strategy(BlockingStrategy::ExactKey),
    )
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    if samples.is_empty() {
        return 0.0;
    }
    samples[samples.len() / 2]
}

/// Replay the mixed stream, serving every scripted read over TCP and
/// in-process back to back, and write `BENCH_net.json`.  Returns the final
/// engine plus the live server/client pair for the criterion group.
fn net_report() -> (IncrementalEngine, Server, NetServer, NetClient) {
    let stream = stream();
    let mut engine = open_engine(&stream);
    engine.set_epoch_retention(4); // reads always address the fresh head
    let server = Server::new(&engine);
    let net = NetServer::spawn(server.clone(), "127.0.0.1:0").expect("bind a loopback port");
    let mut client = NetClient::connect(net.local_addr()).expect("loopback client connects");

    let mut tcp_ms: Vec<f64> = Vec::new();
    let mut inproc_ms: Vec<f64> = Vec::new();
    let mut tcp_total_s = 0.0f64;
    let mut mismatches = 0usize;
    let mut batch_idx = 0usize;
    for op in &stream.ops {
        match op {
            StreamOp::Rows(batch) => {
                engine.apply(batch).expect("scripted batches stay valid");
                let generation = engine.current_epoch().generation();
                for &row in &stream.reads[batch_idx] {
                    let start = Instant::now();
                    let over_tcp = client
                        .repaired_row(row, generation)
                        .expect("TCP read succeeds");
                    let elapsed = start.elapsed().as_secs_f64();
                    tcp_ms.push(elapsed * 1e3);
                    tcp_total_s += elapsed;

                    let start = Instant::now();
                    let in_process = server
                        .repaired_row(row, generation)
                        .expect("in-process read succeeds");
                    inproc_ms.push(start.elapsed().as_secs_f64() * 1e3);

                    // Debug formatting is bit-exact for f64
                    if format!("{over_tcp:?}") != format!("{in_process:?}") {
                        mismatches += 1;
                    }
                }
                batch_idx += 1;
            }
            StreamOp::MasterAppend(rows) => {
                engine
                    .apply_master_append(0, rows.clone())
                    .expect("scripted appends stay valid");
            }
        }
    }

    let entities = engine.snapshot().report.entities.len();
    let batches = batch_idx;
    let reads = tcp_ms.len();
    let tcp_median = median(&mut tcp_ms);
    let inproc_median = median(&mut inproc_ms);
    let reads_per_sec = if tcp_total_s > 0.0 {
        reads as f64 / tcp_total_s
    } else {
        0.0
    };

    println!(
        "net/med-mixed: {reads} paired reads across {batches} batches over {entities} entities — \
         TCP {tcp_median:.4} ms/read ({reads_per_sec:.0} reads/s), \
         in-process {inproc_median:.4} ms/read, {mismatches} mismatches"
    );

    let json = format!(
        "{{\n  \"bench\": \"net\",\n  \"corpus\": \"med-mixed\",\n  \
         \"entities\": {entities},\n  \"batches\": {batches},\n  \
         \"reads\": {reads},\n  \
         \"tcp_read_ms_median\": {tcp_median:.4},\n  \
         \"inproc_read_ms_median\": {inproc_median:.4},\n  \
         \"tcp_reads_per_sec\": {reads_per_sec:.0},\n  \
         \"mismatches\": {mismatches},\n  \
         \"smoke\": {}\n}}\n",
        smoke(),
    );
    let path = bench_output_path(smoke(), "BENCH_net.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("net: wrote {}", path.display()),
        Err(err) => eprintln!("net: could not write {}: {err}", path.display()),
    }
    (engine, server, net, client)
}

/// Group output: the same pinned point read over the wire and in-process.
fn bench_reads(
    c: &mut Criterion,
    engine: &IncrementalEngine,
    server: &Server,
    client: &mut NetClient,
) {
    let generation = engine.current_epoch().generation();
    let row = engine.relation().rows()[0].id;
    let mut group = c.benchmark_group("net/med-mixed");
    group.sample_size(10);
    group.bench_function("tcp_point_read", |b| {
        b.iter(|| black_box(client.repaired_row(row, generation).unwrap()))
    });
    group.bench_function("inproc_point_read", |b| {
        b.iter(|| black_box(server.repaired_row(row, generation).unwrap()))
    });
    group.finish();
}

fn main() {
    let (engine, server, mut net, mut client) = net_report();
    let mut criterion = Criterion::default();
    bench_reads(&mut criterion, &engine, &server, &mut client);
    drop(client);
    net.shutdown();
}
