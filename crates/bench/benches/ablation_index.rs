//! Ablation: the chase with the event index `H` (algorithm IsCR, Fig. 4)
//! versus the naive fixpoint chase that rescans the grounded steps on every
//! pass.  This quantifies the design choice called out in DESIGN.md §4
//! ("grounding once, indexing events").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relacc_core::chase::{is_cr, naive_is_cr};
use relacc_datagen::paper_example::paper_specification;
use relacc_datagen::workloads::syn;
use std::hint::black_box;

fn bench_indexed_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/index_vs_naive");
    group.sample_size(10);

    let paper = paper_specification();
    group.bench_function("indexed/paper_example", |b| {
        b.iter(|| black_box(is_cr(&paper)))
    });
    group.bench_function("naive/paper_example", |b| {
        b.iter(|| black_box(naive_is_cr(&paper)))
    });

    for ie in [60usize, 150, 300] {
        let inst = syn(ie, 40, 24, 41);
        group.bench_with_input(BenchmarkId::new("indexed/syn", ie), &inst, |b, inst| {
            b.iter(|| black_box(is_cr(&inst.spec)))
        });
        group.bench_with_input(BenchmarkId::new("naive/syn", ie), &inst, |b, inst| {
            b.iter(|| black_box(naive_is_cr(&inst.spec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_indexed_vs_naive);
criterion_main!(benches);
