//! `elastic`: per-batch apply cost of an **elastic** [`ShardedEngine`]
//! (one spare shard split off at open, hot blocks chased onto it by
//! [`ShardedEngine::rebalance_hot`] after every batch) vs the same engine
//! left **static**, on a Med update stream whose hot block drifts.
//!
//! The elastic claim: sharding only pays off while the hot block is alone
//! on a small shard.  Under static hash routing a hot block lands on a
//! shard that owns ~1/N of the corpus, so every batch re-scans that whole
//! shard's block membership; the elastic engine migrates the block onto a
//! near-empty spare shard, cutting per-batch work to the block itself —
//! and when the workload's hot spot drifts (`StreamConfig::with_hot_drift`),
//! it keeps chasing.  Timed elastic batches **include** the
//! `rebalance_hot` call, so migration cost is charged to the policy that
//! caused it; the one-time `split_shard` is untimed provisioning.
//!
//! Mid-stream master appends replay through both engines untimed; the
//! report pins the one-shot grounding contract (`master_ground_count`: the
//! summed per-shard `master_groundings` divided by the number of appends
//! must be exactly 1 — shard 0 grounds, every sibling adopts).
//!
//! Both engines run single-threaded, so `elastic_vs_static_speedup`
//! compares algorithmic work, not scheduling luck.  The run writes the
//! machine-readable `BENCH_elastic.json` at the workspace root (smoke runs
//! write under `target/`) and then reports snapshot-assembly timings as a
//! criterion group over the final state.  The committed numbers are gated
//! by `tools/bench_gate` (`elastic_vs_static_speedup ≥ 1.5`,
//! `master_ground_count == 1`).

use criterion::Criterion;
use relacc_bench::{bench_output_path, smoke_mode as smoke};
use relacc_datagen::streaming::{med_stream, StreamConfig, StreamOp, UpdateStream};
use relacc_engine::{BatchEngine, ShardedEngine};
use relacc_resolve::{BlockingStrategy, ResolveConfig};
use std::hint::black_box;
use std::time::Instant;

const SHARDS: usize = 4;

fn stream() -> UpdateStream {
    let scale = if smoke() { 0.01 } else { 0.75 };
    // 2 drift windows of 12 batches: the heat streak costs a few slow
    // batches per window before the hot block is isolated, so the window
    // must be long enough for the isolated steady state to dominate the
    // median — and the mid-run drift forces the policy to re-chase
    let config = StreamConfig {
        n_batches: if smoke() { 2 } else { 24 },
        inserts_per_batch: 3,
        deletes_per_batch: 3,
        master_appends_per_batch: 1,
        fresh_entity_rate: 0.0,
        seed: 97,
        ..StreamConfig::default()
    }
    .with_hot_mix(1, 0.98)
    .with_hot_drift(12);
    med_stream(scale, 13, &config)
}

fn resolve_config(stream: &UpdateStream) -> ResolveConfig {
    ResolveConfig::on_attrs(stream.match_attrs.clone()).with_strategy(BlockingStrategy::ExactKey)
}

fn batch_engine(stream: &UpdateStream) -> BatchEngine {
    BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate")
    .with_threads(1)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    if samples.is_empty() {
        return 0.0;
    }
    samples[samples.len() / 2]
}

/// Replay the stream through a static and an elastic sharded engine, write
/// `BENCH_elastic.json`, and return the engines for the snapshot group.
fn elastic_report() -> (ShardedEngine, ShardedEngine) {
    let stream = stream();
    let resolve = resolve_config(&stream);
    let mut fixed = ShardedEngine::open(
        batch_engine(&stream),
        stream.name.clone(),
        &stream.relation,
        resolve.clone(),
        SHARDS,
    );
    let mut elastic = ShardedEngine::open(
        batch_engine(&stream),
        stream.name.clone(),
        &stream.relation,
        resolve,
        SHARDS,
    );
    // one-time provisioning: a spare shard for the policy to chase onto
    elastic.split_shard();

    let mut fixed_ms: Vec<f64> = Vec::new();
    let mut elastic_ms: Vec<f64> = Vec::new();
    let mut appends = 0usize;
    for op in &stream.ops {
        match op {
            StreamOp::Rows(batch) => {
                let start = Instant::now();
                fixed.apply(batch).expect("scripted batches stay valid");
                fixed_ms.push(start.elapsed().as_secs_f64() * 1e3);

                let start = Instant::now();
                elastic.apply(batch).expect("scripted batches stay valid");
                elastic.rebalance_hot(2);
                elastic_ms.push(start.elapsed().as_secs_f64() * 1e3);
            }
            StreamOp::MasterAppend(rows) => {
                appends += 1;
                fixed
                    .apply_master_append(0, rows.clone())
                    .expect("scripted appends stay valid");
                elastic
                    .apply_master_append(0, rows.clone())
                    .expect("scripted appends stay valid");
            }
        }
    }

    // placement must never change the story
    let a = elastic.snapshot();
    let b = fixed.snapshot();
    assert_eq!(
        a.report.entities.len(),
        b.report.entities.len(),
        "elastic and static disagree on the entity count"
    );
    assert_eq!(
        a.repaired.rows(),
        b.repaired.rows(),
        "elastic and static disagree on the repaired rows"
    );

    // per-batch shape: elastic batches should go bimodal once the hot
    // block lands on the spare shard (cheap) vs window boundaries (full)
    let fmt_ms = |ms: &[f64]| {
        ms.iter()
            .map(|m| format!("{m:.1}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("elastic: static  ms/batch: {}", fmt_ms(&fixed_ms));
    println!("elastic: elastic ms/batch: {}", fmt_ms(&elastic_ms));
    for (name, engine) in [("static", &fixed), ("elastic", &elastic)] {
        let stats = engine.sharded_stats();
        for (idx, s) in stats.per_shard.iter().enumerate() {
            println!(
                "elastic: {name} shard {idx}: {} rows, {} dirty blocks, \
                 {} entities re-repaired, {:.1} ms total",
                engine.shards()[idx].relation().len(),
                s.dirty_blocks,
                s.entities_rerepaired,
                s.batch_ns as f64 / 1e6,
            );
        }
    }

    let entities = a.report.entities.len();
    let batches = elastic_ms.len();
    let fixed_median = median(&mut fixed_ms);
    let elastic_median = median(&mut elastic_ms);
    let speedup = if elastic_median > 0.0 {
        fixed_median / elastic_median
    } else {
        0.0
    };
    // one grounding per append across ALL shards, or the one-shot contract
    // regressed to per-shard grounding
    let ground_count = if appends > 0 {
        elastic.stats().master_groundings as f64 / appends as f64
    } else {
        1.0
    };
    let routing_version = elastic.routing_version();

    println!(
        "elastic/med-hot-drift: {batches} batches over {entities} entities at {SHARDS}+1 shards — \
         elastic {elastic_median:.3} ms/batch, static {fixed_median:.3} ms/batch \
         ({speedup:.1}x, {routing_version} rebalances, {ground_count:.2} groundings/append)"
    );

    let json = format!(
        "{{\n  \"bench\": \"elastic\",\n  \"corpus\": \"med-hot-drift\",\n  \
         \"shards\": {SHARDS},\n  \"entities\": {entities},\n  \
         \"batches\": {batches},\n  \
         \"routing_version\": {routing_version},\n  \
         \"elastic_ms_per_batch_median\": {elastic_median:.3},\n  \
         \"static_ms_per_batch_median\": {fixed_median:.3},\n  \
         \"elastic_vs_static_speedup\": {speedup:.2},\n  \
         \"master_ground_count\": {ground_count:.2},\n  \
         \"smoke\": {}\n}}\n",
        smoke(),
    );
    let path = bench_output_path(smoke(), "BENCH_elastic.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("elastic: wrote {}", path.display()),
        Err(err) => eprintln!("elastic: could not write {}: {err}", path.display()),
    }
    (fixed, elastic)
}

/// Group output: snapshot assembly over the post-stream state of both
/// engines (repeatable per iteration, unlike an apply).
fn bench_snapshot(c: &mut Criterion, fixed: &ShardedEngine, elastic: &ShardedEngine) {
    let mut group = c.benchmark_group("elastic/med-hot-drift");
    group.sample_size(10);
    group.bench_function("static_snapshot", |b| {
        b.iter(|| black_box(fixed.snapshot()))
    });
    group.bench_function("elastic_snapshot", |b| {
        b.iter(|| black_box(elastic.snapshot()))
    });
    group.finish();
}

fn main() {
    let (fixed, elastic) = elastic_report();
    let mut criterion = Criterion::default();
    bench_snapshot(&mut criterion, &fixed, &elastic);
}
