//! Benchmarks regenerating Fig. 7(a)/(b): elapsed time of the top-k algorithms
//! on Med-like entities, grouped by entity-instance size and by the amount of
//! master data available.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relacc_datagen::generator::RuleForms;
use relacc_datagen::workloads::med;
use relacc_topk::{topkct, topkcth, CandidateSearch, PreferenceModel};
use std::hint::black_box;

fn bench_by_entity_size(c: &mut Criterion) {
    // Fig. 7(a): pick one representative entity per size bucket.
    let data = med(0.05, 31);
    let buckets = [(1usize, 18usize), (19, 36), (37, 90)];
    let mut group = c.benchmark_group("fig7a/med_by_entity_size");
    group.sample_size(10);
    for (lo, hi) in buckets {
        let Some(idx) = (0..data.entities.len())
            .find(|&i| (lo..=hi).contains(&data.entities[i].instance.len()))
        else {
            continue;
        };
        let spec = data.specification(idx);
        group.bench_with_input(
            BenchmarkId::new("topkct", format!("[{lo},{hi}]")),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let search =
                        CandidateSearch::prepare(spec, PreferenceModel::occurrence(spec, 15))
                            .expect("Med specs are Church-Rosser");
                    black_box(topkct(&search))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("topkcth", format!("[{lo},{hi}]")),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let search =
                        CandidateSearch::prepare(spec, PreferenceModel::occurrence(spec, 15))
                            .expect("Med specs are Church-Rosser");
                    black_box(topkcth(&search))
                })
            },
        );
    }
    group.finish();
}

fn bench_by_master_size(c: &mut Criterion) {
    // Fig. 7(b): a fixed entity, varying how much master data is visible.
    let data = med(0.05, 32);
    let idx = (0..data.entities.len())
        .max_by_key(|&i| data.entities[i].instance.len())
        .unwrap();
    let full = data.master.len();
    let mut group = c.benchmark_group("fig7b/med_by_master_size");
    group.sample_size(10);
    for frac in [0usize, 2, 4] {
        let limit = full * frac / 4;
        let spec = data.specification_with(idx, RuleForms::Both, Some(limit));
        group.bench_with_input(BenchmarkId::new("topkct", limit), &spec, |b, spec| {
            b.iter(|| {
                let search = CandidateSearch::prepare(spec, PreferenceModel::occurrence(spec, 15))
                    .expect("Med specs are Church-Rosser");
                black_box(topkct(&search))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_entity_size, bench_by_master_size);
criterion_main!(benches);
