//! Typed attribute values and the comparison semantics used by accuracy rules.
//!
//! The paper's rule language compares attribute values with the operators
//! `=, !=, <, <=, >, >=` (Section 2.1).  Values in an entity instance come from
//! heterogeneous real-life sources, so the model supports the usual scalar
//! types plus an explicit [`Value::Null`] marker, which the axiom rule ϕ7 gives
//! the lowest accuracy.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The data type of an attribute in a [`Schema`](crate::Schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean values (`true` / `false`).
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit IEEE-754 floating point numbers (totally ordered via `total_cmp`).
    Float,
    /// UTF-8 strings.
    Text,
}

impl DataType {
    /// Human readable name, used by the catalog and error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single attribute value.
///
/// `Value` implements a *total* equivalence and hash (floats are compared with
/// `f64::total_cmp` and hashed by their bit pattern) so that values can be used
/// as keys in occurrence counts, domains and preference models.  Order
/// comparisons between values of *different* types — and any order comparison
/// involving `Null` — are undefined and surface as `None` from
/// [`Value::compare`].
///
/// Text values are reference-counted (`Arc<str>`), so cloning a value — which
/// the chase's grounding does a lot — never copies string bytes, and two
/// values interned through the same [`crate::Interner`] share one allocation,
/// turning equality on the chase hot path into a pointer comparison.
#[derive(Debug, Clone)]
pub enum Value {
    /// The absent / unknown value.  ϕ7 gives it the lowest accuracy.
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// String value (shared, cheap to clone; see [`crate::Interner`]).
    Str(Arc<str>),
}

impl Value {
    /// Build a text value from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Str(s.into().into())
    }

    /// Returns `true` iff the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type of this value, or `None` for `Null` (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
        }
    }

    /// Returns `true` if this value can be stored in an attribute of type `ty`.
    ///
    /// `Null` is admissible for every type.  Integers are admissible for float
    /// attributes (they are widened on comparison).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Str(_), DataType::Text)
        )
    }

    /// Ordered comparison following the paper's predicate semantics.
    ///
    /// Returns `None` when the comparison is undefined: either operand is
    /// `Null`, or the operands have incompatible types.  Integers and floats
    /// compare numerically.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Value equality as used by the rule predicate `t1[A] = t2[A]` and the
    /// validity condition of chase steps.
    ///
    /// Unlike [`Value::compare`], equality *is* defined for `Null`:
    /// `Null == Null` holds, so two tuples that both lack a value do not make a
    /// partial order invalid.  Numeric values of different width compare
    /// numerically.
    pub fn same(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            // interned strings share one allocation: compare ids, not bytes
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => self.compare(other) == Some(Ordering::Equal),
        }
    }

    /// Evaluate a comparison operator on two values.
    ///
    /// Returns `None` if the comparison is undefined for these operands (the
    /// grounded predicate is then unsatisfiable, see `relacc-core`).
    pub fn eval(&self, op: CmpOp, other: &Value) -> Option<bool> {
        match op {
            CmpOp::Eq => Some(self.same(other)),
            CmpOp::Ne => Some(!self.same(other)),
            CmpOp::Lt => self.compare(other).map(|o| o == Ordering::Less),
            CmpOp::Le => self.compare(other).map(|o| o != Ordering::Greater),
            CmpOp::Gt => self.compare(other).map(|o| o == Ordering::Greater),
            CmpOp::Ge => self.compare(other).map(|o| o != Ordering::Less),
        }
    }

    /// Parse a textual representation into a value of type `ty`.
    ///
    /// The empty string and the literals `null` / `NULL` / `\N` map to
    /// [`Value::Null`].  This is what the CSV loader in `relacc-store` uses.
    pub fn parse_as(ty: DataType, text: &str) -> Result<Value, ValueParseError> {
        let trimmed = text.trim();
        if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("null") || trimmed == "\\N" {
            return Ok(Value::Null);
        }
        match ty {
            DataType::Bool => match trimmed.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" | "yes" => Ok(Value::Bool(true)),
                "false" | "f" | "0" | "no" => Ok(Value::Bool(false)),
                _ => Err(ValueParseError {
                    ty,
                    text: text.to_string(),
                }),
            },
            DataType::Int => trimmed
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| ValueParseError {
                    ty,
                    text: text.to_string(),
                }),
            DataType::Float => {
                trimmed
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| ValueParseError {
                        ty,
                        text: text.to_string(),
                    })
            }
            DataType::Text => Ok(Value::text(trimmed)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            // Cross-width numeric equality is intentionally *not* part of
            // `Eq`/`Hash` (it would break the hash contract); use `same`.
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.into())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// Comparison operators allowed in accuracy-rule predicates (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// All operators, in a stable order (useful for fuzzing and rule discovery).
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// The operator with its operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The textual symbol of the operator, as accepted by the rule parser.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Parse an operator symbol (`=`, `==`, `!=`, `<>`, `<`, `<=`, `>`, `>=`).
    pub fn parse(sym: &str) -> Option<CmpOp> {
        match sym {
            "=" | "==" => Some(CmpOp::Eq),
            "!=" | "<>" => Some(CmpOp::Ne),
            "<" => Some(CmpOp::Lt),
            "<=" => Some(CmpOp::Le),
            ">" => Some(CmpOp::Gt),
            ">=" => Some(CmpOp::Ge),
            _ => None,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Error returned by [`Value::parse_as`] when the text does not parse as the
/// requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueParseError {
    /// The requested type.
    pub ty: DataType,
    /// The offending text.
    pub text: String,
}

impl fmt::Display for ValueParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse {:?} as {}", self.text, self.ty)
    }
}

impl std::error::Error for ValueParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn compare_ints_and_floats_numerically() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(4.0).compare(&Value::Int(4)),
            Some(Ordering::Equal)
        );
        assert!(Value::Int(4).same(&Value::Float(4.0)));
    }

    #[test]
    fn null_compares_to_nothing_but_equals_null() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
        assert!(Value::Null.same(&Value::Null));
        assert!(!Value::Null.same(&Value::Int(0)));
        assert_eq!(Value::Null.eval(CmpOp::Lt, &Value::Int(1)), None);
        assert_eq!(Value::Null.eval(CmpOp::Eq, &Value::Null), Some(true));
    }

    #[test]
    fn mismatched_types_do_not_compare() {
        assert_eq!(Value::text("a").compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
        assert_eq!(Value::text("a").eval(CmpOp::Lt, &Value::Int(1)), None);
        // equality is defined (they are simply different)
        assert_eq!(
            Value::text("a").eval(CmpOp::Eq, &Value::Int(1)),
            Some(false)
        );
        assert_eq!(Value::text("a").eval(CmpOp::Ne, &Value::Int(1)), Some(true));
    }

    #[test]
    fn eval_all_operators() {
        let a = Value::Int(2);
        let b = Value::Int(5);
        assert_eq!(a.eval(CmpOp::Lt, &b), Some(true));
        assert_eq!(a.eval(CmpOp::Le, &b), Some(true));
        assert_eq!(a.eval(CmpOp::Gt, &b), Some(false));
        assert_eq!(a.eval(CmpOp::Ge, &b), Some(false));
        assert_eq!(a.eval(CmpOp::Eq, &b), Some(false));
        assert_eq!(a.eval(CmpOp::Ne, &b), Some(true));
        assert_eq!(b.eval(CmpOp::Ge, &b), Some(true));
    }

    #[test]
    fn flip_is_an_involution_and_consistent() {
        for op in CmpOp::ALL {
            assert_eq!(op.flip().flip(), op);
            let a = Value::Int(1);
            let b = Value::Int(2);
            assert_eq!(a.eval(op, &b), b.eval(op.flip(), &a));
        }
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(
            Value::parse_as(DataType::Int, "42").unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::parse_as(DataType::Float, "2.5").unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Value::parse_as(DataType::Bool, "TRUE").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::parse_as(DataType::Text, " hi ").unwrap(),
            Value::text("hi")
        );
        assert_eq!(Value::parse_as(DataType::Int, "").unwrap(), Value::Null);
        assert_eq!(Value::parse_as(DataType::Int, "null").unwrap(), Value::Null);
        assert!(Value::parse_as(DataType::Int, "abc").is_err());
    }

    #[test]
    fn op_symbols_parse_back() {
        for op in CmpOp::ALL {
            assert_eq!(CmpOp::parse(op.symbol()), Some(op));
        }
        assert_eq!(CmpOp::parse("=="), Some(CmpOp::Eq));
        assert_eq!(CmpOp::parse("<>"), Some(CmpOp::Ne));
        assert_eq!(CmpOp::parse("~"), None);
    }

    #[test]
    fn conformance_rules() {
        assert!(Value::Null.conforms_to(DataType::Int));
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
        assert!(!Value::text("x").conforms_to(DataType::Bool));
    }

    #[test]
    fn hash_agrees_with_eq_for_floats() {
        let a = Value::Float(1.5);
        let b = Value::Float(1.5);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        // -0.0 and 0.0 differ under total_cmp, and so may their hashes.
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::text("x").to_string(), "x");
        assert_eq!(DataType::Text.to_string(), "text");
    }
}
