//! Tuples, entity instances, master relations and target tuples.
//!
//! An *entity instance* `Ie` is the set of tuples referring to the same
//! real-world entity (already grouped by entity resolution, Section 2.1).  A
//! *master relation* `Im` holds curated, trusted tuples over a possibly
//! different schema `Rm`.  The *target tuple* `te` starts as all-null and is
//! instantiated attribute by attribute during the chase.

use crate::schema::{AttrId, SchemaError, SchemaRef};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Index of a tuple within an [`EntityInstance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub usize);

impl TupleId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0 + 1)
    }
}

/// A tuple: one row of values conforming to a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from raw values (validated by the owning relation).
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The value of attribute `a`.
    pub fn value(&self, a: AttrId) -> &Value {
        &self.values[a.0]
    }

    /// All values in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access used by noise injectors in `relacc-datagen`.
    pub fn set(&mut self, a: AttrId, v: Value) {
        self.values[a.0] = v;
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True if every value is null.
    pub fn is_all_null(&self) -> bool {
        self.values.iter().all(Value::is_null)
    }

    /// Mutable access to all values (used by [`crate::Interner`]).
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// The set of tuples `Ie` pertaining to a single entity `e`.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityInstance {
    schema: SchemaRef,
    tuples: Vec<Tuple>,
}

impl EntityInstance {
    /// Create an empty instance over `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        EntityInstance {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Create an instance from rows, validating every row against the schema.
    pub fn from_rows(schema: SchemaRef, rows: Vec<Vec<Value>>) -> Result<Self, SchemaError> {
        let mut ie = EntityInstance::new(schema);
        for row in rows {
            ie.push_row(row)?;
        }
        Ok(ie)
    }

    /// The schema `R`.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of tuples `|Ie|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the instance has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a validated row, returning its [`TupleId`].
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<TupleId, SchemaError> {
        self.schema.validate_row(&row)?;
        self.tuples.push(Tuple::new(row));
        Ok(TupleId(self.tuples.len() - 1))
    }

    /// Append an already-built tuple, validating it.
    pub fn push_tuple(&mut self, tuple: Tuple) -> Result<TupleId, SchemaError> {
        self.schema.validate_row(tuple.values())?;
        self.tuples.push(tuple);
        Ok(TupleId(self.tuples.len() - 1))
    }

    /// The tuple with id `t`.
    pub fn tuple(&self, t: TupleId) -> &Tuple {
        &self.tuples[t.0]
    }

    /// Mutable tuple access (used by the interactive framework when the user
    /// edits `Ie`).
    pub fn tuple_mut(&mut self, t: TupleId) -> &mut Tuple {
        &mut self.tuples[t.0]
    }

    /// All tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Mutable access to all tuples (used by [`crate::Interner`]).
    pub fn tuples_mut(&mut self) -> &mut [Tuple] {
        &mut self.tuples
    }

    /// Iterate `(TupleId, &Tuple)`.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples.iter().enumerate().map(|(i, t)| (TupleId(i), t))
    }

    /// All tuple ids.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> + 'static {
        (0..self.tuples.len()).map(TupleId)
    }

    /// The value `t[a]`.
    pub fn value(&self, t: TupleId, a: AttrId) -> &Value {
        self.tuples[t.0].value(a)
    }

    /// Distinct non-null values appearing in column `a`, in first-seen order.
    pub fn active_domain(&self, a: AttrId) -> Vec<Value> {
        let mut seen = Vec::new();
        for t in &self.tuples {
            let v = t.value(a);
            if !v.is_null() && !seen.iter().any(|s: &Value| s.same(v)) {
                seen.push(v.clone());
            }
        }
        seen
    }

    /// Occurrence count of every distinct non-null value in column `a`.
    ///
    /// This is the default score `w_{A_i}(v)` of the preference model
    /// (Section 3: "automatically derived by counting the occurrences of v in
    /// the Ai column").
    pub fn value_counts(&self, a: AttrId) -> HashMap<Value, usize> {
        let mut counts: HashMap<Value, usize> = HashMap::new();
        for t in &self.tuples {
            let v = t.value(a);
            if !v.is_null() {
                *counts.entry(v.clone()).or_insert(0) += 1;
            }
        }
        counts
    }
}

/// A master relation `Im` of schema `Rm` (Section 2.1, form-(2) rules).
///
/// Master data is read-only during the chase; it is stored separately from
/// entity instances because its schema usually differs from `R`.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterRelation {
    schema: SchemaRef,
    tuples: Vec<Tuple>,
}

impl MasterRelation {
    /// Create an empty master relation over `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        MasterRelation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Create a master relation from rows, validating them.
    pub fn from_rows(schema: SchemaRef, rows: Vec<Vec<Value>>) -> Result<Self, SchemaError> {
        let mut im = MasterRelation::new(schema);
        for row in rows {
            im.push_row(row)?;
        }
        Ok(im)
    }

    /// The master schema `Rm`.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of master tuples `|Im|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if there is no master data (the framework still works, Exp-2).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a validated row.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<usize, SchemaError> {
        self.schema.validate_row(&row)?;
        self.tuples.push(Tuple::new(row));
        Ok(self.tuples.len() - 1)
    }

    /// All master tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Mutable access to all master tuples (used by [`crate::Interner`]).
    pub fn tuples_mut(&mut self) -> &mut [Tuple] {
        &mut self.tuples
    }

    /// The master tuple at `idx`.
    pub fn tuple(&self, idx: usize) -> &Tuple {
        &self.tuples[idx]
    }

    /// Retain only the first `n` tuples (used by the `‖Im‖`-scaling experiments).
    pub fn truncate(&mut self, n: usize) {
        self.tuples.truncate(n);
    }

    /// Distinct non-null values appearing in master column `a`.
    pub fn active_domain(&self, a: AttrId) -> Vec<Value> {
        let mut seen = Vec::new();
        for t in &self.tuples {
            let v = t.value(a);
            if !v.is_null() && !seen.iter().any(|s: &Value| s.same(v)) {
                seen.push(v.clone());
            }
        }
        seen
    }
}

/// The target tuple (template) `te` over schema `R`.
///
/// Attributes hold `Value::Null` until the chase (or the user) instantiates
/// them; once non-null they may never change (validity condition (b) of a
/// chase step).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetTuple {
    values: Vec<Value>,
}

impl TargetTuple {
    /// The all-null initial template `t_e^{D_0}` for a schema of arity `n`.
    pub fn empty(arity: usize) -> Self {
        TargetTuple {
            values: vec![Value::Null; arity],
        }
    }

    /// Build a template from explicit values (used for candidate-target
    /// verification, where the template is a complete tuple).
    pub fn from_values(values: Vec<Value>) -> Self {
        TargetTuple { values }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value of attribute `a`.
    pub fn value(&self, a: AttrId) -> &Value {
        &self.values[a.0]
    }

    /// All values in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Set attribute `a` (the caller enforces the "non-null values never
    /// change" rule; the chase does so explicitly to detect conflicts).
    pub fn set(&mut self, a: AttrId, v: Value) {
        self.values[a.0] = v;
    }

    /// True if attribute `a` is still null.
    pub fn is_null(&self, a: AttrId) -> bool {
        self.values[a.0].is_null()
    }

    /// True if every attribute has been instantiated.
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(|v| !v.is_null())
    }

    /// Ids of the attributes that are still null (the set `Z` of Section 6.1).
    pub fn null_attrs(&self) -> Vec<AttrId> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_null())
            .map(|(i, _)| AttrId(i))
            .collect()
    }

    /// Number of non-null attributes.
    pub fn filled_count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_null()).count()
    }

    /// True if `self` and `other` agree on every attribute that is non-null in
    /// `self` (i.e. `other` is a completion of `self`).
    pub fn is_completed_by(&self, other: &TargetTuple) -> bool {
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(a, b)| a.is_null() || a.same(b))
    }
}

impl fmt::Display for TargetTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("FN", DataType::Text)
            .attr("rnds", DataType::Int)
            .build()
    }

    #[test]
    fn entity_instance_round_trip() {
        let s = schema();
        let mut ie = EntityInstance::new(s.clone());
        let t0 = ie
            .push_row(vec![Value::text("MJ"), Value::Int(16)])
            .unwrap();
        let t1 = ie
            .push_row(vec![Value::text("Michael"), Value::Int(27)])
            .unwrap();
        assert_eq!(ie.len(), 2);
        assert_eq!(*ie.value(t0, AttrId(1)), Value::Int(16));
        assert_eq!(*ie.value(t1, AttrId(0)), Value::text("Michael"));
        assert!(ie.push_row(vec![Value::Int(3), Value::Int(1)]).is_err());
    }

    #[test]
    fn active_domain_dedups_and_skips_null() {
        let s = schema();
        let ie = EntityInstance::from_rows(
            s,
            vec![
                vec![Value::text("MJ"), Value::Int(16)],
                vec![Value::Null, Value::Int(16)],
                vec![Value::text("MJ"), Value::Int(27)],
            ],
        )
        .unwrap();
        assert_eq!(ie.active_domain(AttrId(0)), vec![Value::text("MJ")]);
        assert_eq!(
            ie.active_domain(AttrId(1)),
            vec![Value::Int(16), Value::Int(27)]
        );
        let counts = ie.value_counts(AttrId(1));
        assert_eq!(counts[&Value::Int(16)], 2);
        assert_eq!(counts[&Value::Int(27)], 1);
    }

    #[test]
    fn master_relation_truncate() {
        let s = schema();
        let mut im = MasterRelation::from_rows(
            s,
            vec![
                vec![Value::text("a"), Value::Int(1)],
                vec![Value::text("b"), Value::Int(2)],
            ],
        )
        .unwrap();
        assert_eq!(im.len(), 2);
        im.truncate(1);
        assert_eq!(im.len(), 1);
        assert_eq!(im.tuple(0).value(AttrId(0)), &Value::text("a"));
        assert!(!im.is_empty());
    }

    #[test]
    fn target_tuple_completion() {
        let mut te = TargetTuple::empty(3);
        assert!(!te.is_complete());
        assert_eq!(te.null_attrs(), vec![AttrId(0), AttrId(1), AttrId(2)]);
        te.set(AttrId(1), Value::Int(5));
        assert_eq!(te.filled_count(), 1);
        assert!(te.is_null(AttrId(0)));
        assert!(!te.is_null(AttrId(1)));

        let full =
            TargetTuple::from_values(vec![Value::text("x"), Value::Int(5), Value::Bool(true)]);
        assert!(te.is_completed_by(&full));
        let conflicting =
            TargetTuple::from_values(vec![Value::text("x"), Value::Int(6), Value::Bool(true)]);
        assert!(!te.is_completed_by(&conflicting));
        assert!(full.is_complete());
        assert_eq!(full.to_string(), "(x, 5, true)");
    }

    #[test]
    fn tuple_display_id() {
        assert_eq!(TupleId(0).to_string(), "t1");
        assert_eq!(TupleId(3).to_string(), "t4");
    }
}
