//! # relacc-model
//!
//! Data model shared by every crate of the `relacc` workspace, which reproduces
//! *"Determining the Relative Accuracy of Attributes"* (Cao, Fan, Yu —
//! SIGMOD 2013).
//!
//! The model provides:
//!
//! * [`Value`] / [`DataType`] — typed attribute values with the comparison
//!   semantics used by accuracy-rule predicates (`=, !=, <, <=, >, >=`) and an
//!   explicit null;
//! * [`Schema`] / [`AttrId`] — relation schemas addressing attributes by index;
//! * [`EntityInstance`] (`Ie`), [`MasterRelation`] (`Im`) and [`TargetTuple`]
//!   (`te`) — the three relations a specification `S = (D0, Σ, Im, te)` is
//!   built from;
//! * [`AccuracyOrders`] / [`AttrOrder`] — the per-attribute accuracy partial
//!   orders `⪯_A` populated by the chase, stored over value equivalence
//!   classes with transitive closure and conflict detection;
//! * [`BitSet`] — the dense bit set backing the reachability matrices.
//!
//! The paper-specific inference machinery (accuracy rules, the chase, IsCR,
//! top-k candidate targets) lives in `relacc-core` and `relacc-topk`; this
//! crate is deliberately free of any rule or algorithm logic so that the
//! substrates (`relacc-store`, `relacc-datagen`, `relacc-fusion`) can reuse it
//! without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod intern;
pub mod orders;
pub mod schema;
pub mod tuple;
pub mod value;

pub use bitset::BitSet;
pub use intern::Interner;
pub use orders::{AccuracyOrders, AttrOrder, ClassId, OrderInsert};
pub use schema::{AttrId, Attribute, Schema, SchemaBuilder, SchemaError, SchemaRef};
pub use tuple::{EntityInstance, MasterRelation, TargetTuple, Tuple, TupleId};
pub use value::{CmpOp, DataType, Value, ValueParseError};
