//! Relation schemas and attribute identifiers.
//!
//! A schema `R = (A1, ..., An)` names the attributes of an entity instance or
//! master relation and fixes their [`DataType`]s.  Attributes are addressed by
//! [`AttrId`] (their position) throughout the crate stack: this keeps the hot
//! inference loops free of string hashing.

use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub usize);

impl AttrId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A named, typed attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (unique within its schema).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// A relation schema: an ordered list of named, typed attributes.
///
/// Schemas are cheap to clone (`Arc` them via [`SchemaRef`]) and are shared by
/// entity instances, master relations, target tuples and rule sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attributes: Vec<Attribute>,
    by_name: HashMap<String, usize>,
}

/// Shared handle to a schema.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics if two attributes share a name; schemas are almost always
    /// constructed from literals or generators, so this is a programming error.
    pub fn new(name: impl Into<String>, attrs: Vec<Attribute>) -> Self {
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            let prev = by_name.insert(a.name.clone(), i);
            assert!(prev.is_none(), "duplicate attribute name {:?}", a.name);
        }
        Schema {
            name: name.into(),
            attributes: attrs,
            by_name,
        }
    }

    /// Builder-style constructor used heavily in tests and generators.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Iterate over `(AttrId, &Attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i), a))
    }

    /// All attribute ids, in order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + 'static {
        (0..self.attributes.len()).map(AttrId)
    }

    /// Look up an attribute by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied().map(AttrId)
    }

    /// Look up an attribute by name, panicking with a helpful message if it is
    /// missing.  Used where the attribute is statically known to exist (tests,
    /// generators, the paper's running example).
    pub fn expect_attr(&self, name: &str) -> AttrId {
        self.attr_id(name)
            .unwrap_or_else(|| panic!("schema {:?} has no attribute {:?}", self.name, name))
    }

    /// The attribute metadata for `id`.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.0]
    }

    /// The name of attribute `id`.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attributes[id.0].name
    }

    /// The declared type of attribute `id`.
    pub fn attr_type(&self, id: AttrId) -> DataType {
        self.attributes[id.0].ty
    }

    /// Check that a row of values conforms to the schema (arity and types).
    pub fn validate_row(&self, row: &[Value]) -> Result<(), SchemaError> {
        if row.len() != self.arity() {
            return Err(SchemaError::ArityMismatch {
                schema: self.name.clone(),
                expected: self.arity(),
                got: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            let ty = self.attributes[i].ty;
            if !v.conforms_to(ty) {
                return Err(SchemaError::TypeMismatch {
                    schema: self.name.clone(),
                    attribute: self.attributes[i].name.clone(),
                    expected: ty,
                    got: v.clone(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        f.write_str(")")
    }
}

/// Incremental schema construction.
#[derive(Debug)]
pub struct SchemaBuilder {
    name: String,
    attrs: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Append an attribute.
    pub fn attr(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.attrs.push(Attribute::new(name, ty));
        self
    }

    /// Append many text attributes at once (common in the generated datasets).
    pub fn text_attrs<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for n in names {
            self.attrs.push(Attribute::new(n, DataType::Text));
        }
        self
    }

    /// Finish, producing a shared schema handle.
    pub fn build(self) -> SchemaRef {
        Arc::new(Schema::new(self.name, self.attrs))
    }
}

/// Errors raised when rows do not conform to a schema.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// The row has the wrong number of values.
    ArityMismatch {
        /// Schema name.
        schema: String,
        /// Declared arity.
        expected: usize,
        /// Row length.
        got: usize,
    },
    /// A value does not conform to its attribute's declared type.
    TypeMismatch {
        /// Schema name.
        schema: String,
        /// Attribute name.
        attribute: String,
        /// Declared type.
        expected: DataType,
        /// Offending value.
        got: Value,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::ArityMismatch {
                schema,
                expected,
                got,
            } => write!(
                f,
                "relation {schema}: expected {expected} values per row, got {got}"
            ),
            SchemaError::TypeMismatch {
                schema,
                attribute,
                expected,
                got,
            } => write!(
                f,
                "relation {schema}: attribute {attribute} expects {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchemaRef {
        Schema::builder("stat")
            .attr("FN", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("totalPts", DataType::Int)
            .build()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = sample();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_id("rnds"), Some(AttrId(1)));
        assert_eq!(s.attr_id("nope"), None);
        assert_eq!(s.attr_name(AttrId(0)), "FN");
        assert_eq!(s.attr_type(AttrId(2)), DataType::Int);
        assert_eq!(s.expect_attr("totalPts"), AttrId(2));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_panic() {
        let _ = Schema::new(
            "r",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("a", DataType::Text),
            ],
        );
    }

    #[test]
    fn validate_rows() {
        let s = sample();
        assert!(s
            .validate_row(&[Value::text("MJ"), Value::Int(16), Value::Int(424)])
            .is_ok());
        assert!(s
            .validate_row(&[Value::Null, Value::Null, Value::Null])
            .is_ok());
        let err = s
            .validate_row(&[Value::text("MJ"), Value::text("x"), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, SchemaError::TypeMismatch { .. }));
        let err = s.validate_row(&[Value::Null]).unwrap_err();
        assert!(matches!(err, SchemaError::ArityMismatch { .. }));
    }

    #[test]
    fn display_is_readable() {
        let s = sample();
        assert_eq!(s.to_string(), "stat(FN: text, rnds: int, totalPts: int)");
        assert_eq!(AttrId(3).to_string(), "A3");
    }

    #[test]
    fn builder_text_attrs() {
        let s = Schema::builder("r").text_attrs(["a", "b"]).build();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attr_type(AttrId(1)), DataType::Text);
    }
}
