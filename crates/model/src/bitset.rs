//! A small fixed-capacity bit set used for the reachability matrices of the
//! accuracy orders.
//!
//! The orders operate on *value equivalence classes* (see [`crate::orders`]),
//! whose count per attribute is the number of distinct values — typically tiny
//! — so a dense `u64`-word bit set beats hash sets both in memory and in the
//! transitive-closure inner loops.
//!
//! The word-level popcount counters ([`BitSet::intersect_count`],
//! [`BitSet::union_count`], [`BitSet::difference_count`]) additionally back
//! the fixed-width record fingerprints of `relacc_resolve::fingerprint`,
//! where set-difference cardinalities lower-bound edit distance without ever
//! materializing the intersection/difference sets.

/// A growable, dense bit set over `usize` indices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty bit set with capacity for `len` bits.
    pub fn with_capacity(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable bits.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Grow the capacity to at least `len` bits (never shrinks).
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(64), 0);
        }
    }

    /// Set bit `i`, returning `true` if it was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of capacity {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Clear bit `i`.
    pub fn remove(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Test bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bitwise-or `other` into `self`; both must have the same capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Number of bits set in both `self` and `other` (popcount of the
    /// intersection), without materializing it.  Capacities may differ; bits
    /// beyond the shorter set count as unset.
    pub fn intersect_count(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Number of bits set in `self` or `other` (popcount of the union),
    /// without materializing it.  Capacities may differ.
    pub fn union_count(&self, other: &BitSet) -> usize {
        let common = self.words.len().min(other.words.len());
        let mut count = 0usize;
        for i in 0..common {
            count += (self.words[i] | other.words[i]).count_ones() as usize;
        }
        for &w in &self.words[common..] {
            count += w.count_ones() as usize;
        }
        for &w in &other.words[common..] {
            count += w.count_ones() as usize;
        }
        count
    }

    /// Number of bits set in `self` but not in `other` (popcount of the set
    /// difference `self \ other`), without materializing it.  Capacities may
    /// differ; bits of `self` beyond `other`'s capacity are all in the
    /// difference.
    pub fn difference_count(&self, other: &BitSet) -> usize {
        let common = self.words.len().min(other.words.len());
        let mut count = 0usize;
        for i in 0..common {
            count += (self.words[i] & !other.words[i]).count_ones() as usize;
        }
        for &w in &self.words[common..] {
            count += w.count_ones() as usize;
        }
        count
    }

    /// True if every bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over the indices of set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Remove all bits.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let max = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut bs = BitSet::with_capacity(max);
        for i in items {
            bs.insert(i);
        }
        bs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bs = BitSet::with_capacity(130);
        assert!(bs.insert(0));
        assert!(bs.insert(64));
        assert!(bs.insert(129));
        assert!(!bs.insert(64));
        assert!(bs.contains(0) && bs.contains(64) && bs.contains(129));
        assert!(!bs.contains(1));
        assert!(!bs.contains(500));
        assert_eq!(bs.count(), 3);
        bs.remove(64);
        assert!(!bs.contains(64));
        assert_eq!(bs.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut bs = BitSet::with_capacity(8);
        bs.insert(8);
    }

    #[test]
    fn grow_preserves_bits() {
        let mut bs = BitSet::with_capacity(4);
        bs.insert(3);
        bs.grow(200);
        assert!(bs.contains(3));
        assert!(bs.insert(199));
        assert_eq!(bs.capacity(), 200);
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitSet::with_capacity(100);
        let mut b = BitSet::with_capacity(100);
        a.insert(1);
        a.insert(70);
        b.insert(70);
        b.insert(99);
        assert!(!a.is_subset(&b));
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(70) && a.contains(99));
        assert!(b.is_subset(&a));
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn popcount_set_algebra() {
        let a: BitSet = [1usize, 5, 70, 99].into_iter().collect();
        let b: BitSet = [5usize, 70, 128].into_iter().collect();
        assert_eq!(a.intersect_count(&b), 2);
        assert_eq!(a.union_count(&b), 5);
        assert_eq!(a.difference_count(&b), 2); // {1, 99}
        assert_eq!(b.difference_count(&a), 1); // {128}
                                               // identities: |a| + |b| == |a ∪ b| + |a ∩ b|
        assert_eq!(
            a.count() + b.count(),
            a.union_count(&b) + a.intersect_count(&b)
        );
        // symmetry and self-application
        assert_eq!(a.union_count(&b), b.union_count(&a));
        assert_eq!(a.intersect_count(&b), b.intersect_count(&a));
        assert_eq!(a.difference_count(&a), 0);
        assert_eq!(a.union_count(&a), a.count());
        // empty edge cases
        let empty = BitSet::default();
        assert_eq!(a.intersect_count(&empty), 0);
        assert_eq!(a.union_count(&empty), a.count());
        assert_eq!(a.difference_count(&empty), a.count());
        assert_eq!(empty.difference_count(&a), 0);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let bs: BitSet = [5usize, 1, 64, 63].into_iter().collect();
        let got: Vec<usize> = bs.iter().collect();
        assert_eq!(got, vec![1, 5, 63, 64]);
    }

    #[test]
    fn clear_and_empty() {
        let mut bs: BitSet = [3usize, 9].into_iter().collect();
        assert!(!bs.is_empty());
        bs.clear();
        assert!(bs.is_empty());
        assert_eq!(bs.iter().count(), 0);
    }
}
