//! String interning for [`Value::Str`].
//!
//! Text values are reference-counted (`Arc<str>`).  An [`Interner`]
//! deduplicates those allocations so that every occurrence of the same string
//! in a workload shares one `Arc` — after interning, value equality on the
//! chase hot path ([`Value::same`]) is decided by a pointer comparison instead
//! of a byte-wise string comparison, and cloning values during grounding is a
//! reference-count bump.
//!
//! Interning is *optional*: values from different sources (or none) still
//! compare correctly by content; the interner only makes the fast path fire.
//! The compile-once pipeline (`relacc_core::chase::ChasePlan`,
//! `relacc-engine`) interns master data at plan-compilation time and entity
//! instances when they are registered with a batch.

use crate::tuple::{EntityInstance, MasterRelation};
use crate::value::Value;
use std::collections::HashSet;
use std::sync::Arc;

/// Deduplicates the `Arc<str>` allocations behind [`Value::Str`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: HashSet<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The canonical shared allocation for `s`.
    pub fn intern_str(&mut self, s: &str) -> Arc<str> {
        if let Some(existing) = self.strings.get(s) {
            return existing.clone();
        }
        let arc: Arc<str> = Arc::from(s);
        self.strings.insert(arc.clone());
        arc
    }

    /// Canonicalize a value: text values are replaced by their interned
    /// representative, all other variants pass through unchanged.
    pub fn intern_value(&mut self, v: &mut Value) {
        if let Value::Str(s) = v {
            if let Some(existing) = self.strings.get(&**s) {
                *s = existing.clone();
            } else {
                self.strings.insert(s.clone());
            }
        }
    }

    /// Intern every text value of an entity instance in place.
    pub fn intern_instance(&mut self, ie: &mut EntityInstance) {
        for tuple in ie.tuples_mut() {
            for v in tuple.values_mut() {
                self.intern_value(v);
            }
        }
    }

    /// Intern every text value of a master relation in place.
    pub fn intern_master(&mut self, im: &mut MasterRelation) {
        for tuple in im.tuples_mut() {
            for v in tuple.values_mut() {
                self.intern_value(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    #[test]
    fn interning_dedups_and_preserves_content() {
        let mut interner = Interner::new();
        let a = interner.intern_str("Chicago Bulls");
        let b = interner.intern_str("Chicago Bulls");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(interner.len(), 1);

        let mut v1 = Value::text("Chicago Bulls");
        let mut v2 = Value::text("Chicago Bulls");
        // distinct allocations before interning, still equal by content
        assert!(v1.same(&v2));
        interner.intern_value(&mut v1);
        interner.intern_value(&mut v2);
        match (&v1, &v2) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
        assert!(v1.same(&v2));
        // non-text values pass through
        let mut n = Value::Int(3);
        interner.intern_value(&mut n);
        assert_eq!(n, Value::Int(3));
    }

    #[test]
    fn instances_and_masters_intern_in_place() {
        let schema = Schema::builder("r")
            .attr("name", DataType::Text)
            .attr("n", DataType::Int)
            .build();
        let mut ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![Value::text("x"), Value::Int(1)],
                vec![Value::text("x"), Value::Int(2)],
            ],
        )
        .unwrap();
        let mut interner = Interner::new();
        interner.intern_instance(&mut ie);
        assert_eq!(interner.len(), 1);
        let (a, b) = (
            ie.value(crate::TupleId(0), crate::AttrId(0)),
            ie.value(crate::TupleId(1), crate::AttrId(0)),
        );
        match (a, b) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }

        let mut im =
            MasterRelation::from_rows(schema, vec![vec![Value::text("x"), Value::Int(9)]]).unwrap();
        interner.intern_master(&mut im);
        assert_eq!(interner.len(), 1);
    }
}
