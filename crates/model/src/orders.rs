//! Accuracy partial orders `⪯_A` / `≺_A` over an entity instance.
//!
//! Section 2.1 of the paper defines, for every attribute `A`, a strict partial
//! order `≺_A` over the `A`-values of the tuples in `Ie`, together with its
//! reflexive companion `⪯_A` (`t1 ⪯_A t2` iff `t1[A] = t2[A]` or `t1 ≺_A t2`).
//! The chase only ever *adds* pairs, and a chase step is valid only if the
//! relation stays antisymmetric up to value equality: `t1 ⪯ t2 ⪯ t1` is allowed
//! only when `t1[A] = t2[A]`.
//!
//! # Representation
//!
//! Because `t1 ⪯_A t2` is determined by the *values* `t1[A]` and `t2[A]`
//! (axiom ϕ9 forces equal values to be mutually `⪯`, and the validity condition
//! forbids cycles over distinct values), the order is stored over **value
//! equivalence classes**: tuples of an attribute are grouped by value, and the
//! order is a strict partial order over those classes, kept transitively closed
//! with dense bit sets.  This makes ϕ9 hold by construction, keeps insertions
//! cheap, and the induced tuple-level relation is exactly the paper's.

use crate::bitset::BitSet;
use crate::schema::AttrId;
use crate::tuple::{EntityInstance, TupleId};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a value equivalence class within one attribute's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub usize);

impl ClassId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Outcome of inserting a `⪯` pair into an attribute order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderInsert {
    /// The pair (or its class-level equivalent) was already present — the chase
    /// step is a no-op.
    NoChange,
    /// The pair was added; the vector lists every *newly related* class pair
    /// `(lower, upper)` produced by the transitive closure, which the chase
    /// index uses to wake up ground steps.
    Added(Vec<(ClassId, ClassId)>),
    /// Adding the pair would relate two classes with *different* values in both
    /// directions — the chase step is invalid (condition (a) of Section 2.2).
    Conflict,
}

impl OrderInsert {
    /// True for [`OrderInsert::Conflict`].
    pub fn is_conflict(&self) -> bool {
        matches!(self, OrderInsert::Conflict)
    }
}

/// The accuracy order of a single attribute.
#[derive(Debug, Clone)]
pub struct AttrOrder {
    attr: AttrId,
    /// Representative value of every class (class 0.. in first-seen order).
    class_values: Vec<Value>,
    /// Members of every class.
    class_members: Vec<Vec<TupleId>>,
    /// `class_of[t]` is the class of tuple `t`.
    class_of: Vec<usize>,
    /// The class holding the null value, if any tuple has a null `A`-value.
    null_class: Option<usize>,
    /// `succ[c]` = classes `d ≠ c` with `c ⪯ d` (transitively closed).
    succ: Vec<BitSet>,
    /// `pred[c]` = classes `d ≠ c` with `d ⪯ c`.
    pred: Vec<BitSet>,
    /// Number of ordered class pairs (strict edges in the closure).
    edges: usize,
}

impl AttrOrder {
    /// Build the (initially empty) order for attribute `attr` of `ie`.
    pub fn new(ie: &EntityInstance, attr: AttrId) -> Self {
        let mut class_values: Vec<Value> = Vec::new();
        let mut class_members: Vec<Vec<TupleId>> = Vec::new();
        let mut class_of = Vec::with_capacity(ie.len());
        let mut by_value: HashMap<Value, usize> = HashMap::new();
        let mut null_class = None;

        for (tid, tuple) in ie.iter() {
            let v = tuple.value(attr);
            let class = if v.is_null() {
                *null_class.get_or_insert_with(|| {
                    class_values.push(Value::Null);
                    class_members.push(Vec::new());
                    class_values.len() - 1
                })
            } else {
                *by_value.entry(v.clone()).or_insert_with(|| {
                    class_values.push(v.clone());
                    class_members.push(Vec::new());
                    class_values.len() - 1
                })
            };
            class_members[class].push(tid);
            class_of.push(class);
        }

        let n = class_values.len();
        AttrOrder {
            attr,
            class_values,
            class_members,
            class_of,
            null_class,
            succ: vec![BitSet::with_capacity(n); n],
            pred: vec![BitSet::with_capacity(n); n],
            edges: 0,
        }
    }

    /// The attribute this order belongs to.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Number of value equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.class_values.len()
    }

    /// Number of strict ordered class pairs currently in the closure.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The class of tuple `t`.
    pub fn class_of(&self, t: TupleId) -> ClassId {
        ClassId(self.class_of[t.0])
    }

    /// The representative value of class `c`.
    pub fn class_value(&self, c: ClassId) -> &Value {
        &self.class_values[c.0]
    }

    /// The tuples whose value falls in class `c`.
    pub fn class_members(&self, c: ClassId) -> &[TupleId] {
        &self.class_members[c.0]
    }

    /// The class holding null values, if present.
    pub fn null_class(&self) -> Option<ClassId> {
        self.null_class.map(ClassId)
    }

    /// The class whose value is `v` (using value equality), if any.
    pub fn class_of_value(&self, v: &Value) -> Option<ClassId> {
        if v.is_null() {
            return self.null_class.map(ClassId);
        }
        self.class_values
            .iter()
            .position(|cv| cv.same(v))
            .map(ClassId)
    }

    /// Does `a ⪯ b` hold at class level?  (Reflexive: `a ⪯ a` always holds.)
    pub fn class_le(&self, a: ClassId, b: ClassId) -> bool {
        a == b || self.succ[a.0].contains(b.0)
    }

    /// Does `t1 ⪯_A t2` hold?
    pub fn holds_le(&self, t1: TupleId, t2: TupleId) -> bool {
        self.class_le(self.class_of(t1), self.class_of(t2))
    }

    /// Does `t1 ≺_A t2` hold (i.e. `⪯` over *different* values)?
    pub fn holds_lt(&self, t1: TupleId, t2: TupleId) -> bool {
        let (a, b) = (self.class_of(t1), self.class_of(t2));
        a != b && self.succ[a.0].contains(b.0)
    }

    /// Insert `t1 ⪯_A t2`.
    pub fn insert_le(&mut self, t1: TupleId, t2: TupleId) -> OrderInsert {
        self.insert_class_le(self.class_of(t1), self.class_of(t2))
    }

    /// Insert `a ⪯ b` between classes, maintaining the transitive closure.
    ///
    /// Returns the list of newly related class pairs (including `(a, b)`
    /// itself), [`OrderInsert::NoChange`] if nothing changed, or
    /// [`OrderInsert::Conflict`] if `b ⪯ a` already holds for distinct classes.
    pub fn insert_class_le(&mut self, a: ClassId, b: ClassId) -> OrderInsert {
        if a == b {
            return OrderInsert::NoChange;
        }
        if self.succ[b.0].contains(a.0) {
            return OrderInsert::Conflict;
        }
        if self.succ[a.0].contains(b.0) {
            return OrderInsert::NoChange;
        }
        // All lowers of a (plus a) become ⪯ all uppers of b (plus b).
        let mut lowers: Vec<usize> = self.pred[a.0].iter().collect();
        lowers.push(a.0);
        let mut uppers: Vec<usize> = self.succ[b.0].iter().collect();
        uppers.push(b.0);

        let mut added = Vec::new();
        for &x in &lowers {
            for &y in &uppers {
                if x != y && self.succ[x].insert(y) {
                    self.pred[y].insert(x);
                    self.edges += 1;
                    added.push((ClassId(x), ClassId(y)));
                }
            }
        }
        debug_assert!(!added.is_empty());
        OrderInsert::Added(added)
    }

    /// Remove a class pair previously reported in the `Added` list of
    /// [`AttrOrder::insert_class_le`] — the undo primitive of the chase
    /// checkpoint/resume layer.
    ///
    /// The caller must retract exactly the pairs of one or more `Added` lists
    /// (in reverse insertion order) to restore the order to its prior state;
    /// retracting anything else breaks the transitive-closure invariants.
    pub fn retract_class_le(&mut self, a: ClassId, b: ClassId) {
        debug_assert!(
            self.succ[a.0].contains(b.0),
            "retracting a pair that is not present"
        );
        self.succ[a.0].remove(b.0);
        self.pred[b.0].remove(a.0);
        self.edges -= 1;
    }

    /// Would inserting `a ⪯ b` be a conflict?  (Read-only validity probe used
    /// by the Church-Rosser check.)
    pub fn would_conflict(&self, a: ClassId, b: ClassId) -> bool {
        a != b && self.succ[b.0].contains(a.0)
    }

    /// The λ function of Section 2.2: the value of a class `c` such that every
    /// tuple of `Ie` is `⪯` it, if such a class exists.
    ///
    /// With the class representation this means every *other* class must be a
    /// predecessor of `c`.
    pub fn greatest(&self) -> Option<(ClassId, &Value)> {
        let n = self.num_classes();
        if n == 0 {
            return None;
        }
        if n == 1 {
            // A single class: every tuple has the same value; it is trivially
            // the most accurate one (but a null-only column has no value).
            return if self.class_values[0].is_null() {
                None
            } else {
                Some((ClassId(0), &self.class_values[0]))
            };
        }
        (0..n).find_map(|c| {
            if self.pred[c].count() == n - 1 && !self.class_values[c].is_null() {
                Some((ClassId(c), &self.class_values[c]))
            } else {
                None
            }
        })
    }

    /// Every ordered pair of *distinct* tuples `(t1, t2)` with `t1 ⪯_A t2`.
    ///
    /// Quadratic in `|Ie|`; intended for tests, debugging and display of small
    /// instances (like the paper's running example), not for the hot path.
    pub fn related_tuple_pairs(&self) -> Vec<(TupleId, TupleId)> {
        let mut pairs = Vec::new();
        let n = self.class_of.len();
        for i in 0..n {
            for j in 0..n {
                if i != j && self.class_le(ClassId(self.class_of[i]), ClassId(self.class_of[j])) {
                    pairs.push((TupleId(i), TupleId(j)));
                }
            }
        }
        pairs
    }

    /// Check structural invariants (transitivity, antisymmetry, symmetric
    /// pred/succ).  Used by property tests; `debug_assert`-style cost.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_classes();
        for a in 0..n {
            if self.succ[a].contains(a) {
                return Err(format!("class {a} is a strict successor of itself"));
            }
            for b in self.succ[a].iter() {
                if !self.pred[b].contains(a) {
                    return Err(format!("succ/pred mismatch for ({a},{b})"));
                }
                if self.succ[b].contains(a) {
                    return Err(format!("antisymmetry violated for ({a},{b})"));
                }
                // transitivity: succ[b] ⊆ succ[a]
                if !self.succ[b].is_subset(&self.succ[a]) {
                    return Err(format!("transitivity violated at ({a},{b})"));
                }
            }
        }
        Ok(())
    }
}

/// The accuracy orders of every attribute of an entity instance — the `D` part
/// of an accuracy instance `(D, t_e^D)`.
#[derive(Debug, Clone)]
pub struct AccuracyOrders {
    orders: Vec<AttrOrder>,
}

impl AccuracyOrders {
    /// Build empty orders (`≺_{A_i} = ∅` for every attribute) for `ie`.
    pub fn new(ie: &EntityInstance) -> Self {
        let orders = ie
            .schema()
            .attr_ids()
            .map(|a| AttrOrder::new(ie, a))
            .collect();
        AccuracyOrders { orders }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.orders.len()
    }

    /// The order of attribute `a`.
    pub fn attr(&self, a: AttrId) -> &AttrOrder {
        &self.orders[a.0]
    }

    /// Mutable access to the order of attribute `a`.
    pub fn attr_mut(&mut self, a: AttrId) -> &mut AttrOrder {
        &mut self.orders[a.0]
    }

    /// Iterate over all attribute orders.
    pub fn iter(&self) -> impl Iterator<Item = &AttrOrder> {
        self.orders.iter()
    }

    /// Total number of strict class pairs across all attributes.
    pub fn total_edges(&self) -> usize {
        self.orders.iter().map(AttrOrder::edge_count).sum()
    }

    /// Does `t1 ⪯_a t2` hold?
    pub fn holds_le(&self, a: AttrId, t1: TupleId, t2: TupleId) -> bool {
        self.orders[a.0].holds_le(t1, t2)
    }

    /// Does `t1 ≺_a t2` hold?
    pub fn holds_lt(&self, a: AttrId, t1: TupleId, t2: TupleId) -> bool {
        self.orders[a.0].holds_lt(t1, t2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn instance() -> EntityInstance {
        let schema = Schema::builder("r")
            .attr("a", DataType::Int)
            .attr("b", DataType::Text)
            .build();
        EntityInstance::from_rows(
            schema,
            vec![
                vec![Value::Int(16), Value::text("x")],
                vec![Value::Int(27), Value::text("y")],
                vec![Value::Int(1), Value::text("x")],
                vec![Value::Null, Value::text("z")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn classes_group_equal_values() {
        let ie = instance();
        let ord = AttrOrder::new(&ie, AttrId(1));
        assert_eq!(ord.num_classes(), 3);
        assert_eq!(ord.class_of(TupleId(0)), ord.class_of(TupleId(2)));
        assert_ne!(ord.class_of(TupleId(0)), ord.class_of(TupleId(1)));
        // equal values are mutually ⪯ by construction (axiom ϕ9)
        assert!(ord.holds_le(TupleId(0), TupleId(2)));
        assert!(ord.holds_le(TupleId(2), TupleId(0)));
        assert!(!ord.holds_lt(TupleId(0), TupleId(2)));
    }

    #[test]
    fn null_values_share_a_class() {
        let ie = instance();
        let ord = AttrOrder::new(&ie, AttrId(0));
        assert_eq!(ord.num_classes(), 4);
        let nc = ord.null_class().unwrap();
        assert_eq!(ord.class_of(TupleId(3)), nc);
        assert!(ord.class_value(nc).is_null());
        assert_eq!(ord.class_of_value(&Value::Null), Some(nc));
        assert_eq!(
            ord.class_of_value(&Value::Int(27)),
            Some(ord.class_of(TupleId(1)))
        );
        assert_eq!(ord.class_of_value(&Value::Int(999)), None);
    }

    #[test]
    fn insert_and_transitive_closure() {
        let ie = instance();
        let mut ord = AttrOrder::new(&ie, AttrId(0));
        // t3(a=1) ⪯ t1(a=16) ⪯ t2(a=27)
        assert!(matches!(
            ord.insert_le(TupleId(2), TupleId(0)),
            OrderInsert::Added(_)
        ));
        match ord.insert_le(TupleId(0), TupleId(1)) {
            OrderInsert::Added(pairs) => {
                // closure must add 1⪯27 as well as 16⪯27
                assert_eq!(pairs.len(), 2);
            }
            other => panic!("expected Added, got {other:?}"),
        }
        assert!(ord.holds_lt(TupleId(2), TupleId(1)));
        assert_eq!(ord.insert_le(TupleId(2), TupleId(1)), OrderInsert::NoChange);
        ord.check_invariants().unwrap();
    }

    #[test]
    fn retract_undoes_an_added_list_exactly() {
        let ie = instance();
        let mut ord = AttrOrder::new(&ie, AttrId(0));
        ord.insert_le(TupleId(2), TupleId(0)); // 1 ⪯ 16
        let baseline = ord.clone();
        let added = match ord.insert_le(TupleId(0), TupleId(1)) {
            OrderInsert::Added(pairs) => pairs,
            other => panic!("expected Added, got {other:?}"),
        };
        assert!(ord.holds_lt(TupleId(2), TupleId(1)));
        for (a, b) in added.into_iter().rev() {
            ord.retract_class_le(a, b);
        }
        assert_eq!(ord.edge_count(), baseline.edge_count());
        assert!(!ord.holds_lt(TupleId(2), TupleId(1)));
        assert!(!ord.holds_lt(TupleId(0), TupleId(1)));
        assert!(ord.holds_lt(TupleId(2), TupleId(0)));
        ord.check_invariants().unwrap();
        // re-inserting after the retract behaves like the first time
        assert!(matches!(
            ord.insert_le(TupleId(0), TupleId(1)),
            OrderInsert::Added(_)
        ));
        assert!(ord.holds_lt(TupleId(2), TupleId(1)));
    }

    #[test]
    fn conflicting_insert_detected() {
        let ie = instance();
        let mut ord = AttrOrder::new(&ie, AttrId(0));
        assert!(matches!(
            ord.insert_le(TupleId(0), TupleId(1)),
            OrderInsert::Added(_)
        ));
        // the reverse over different values is a conflict
        assert_eq!(ord.insert_le(TupleId(1), TupleId(0)), OrderInsert::Conflict);
        let (a, b) = (ord.class_of(TupleId(1)), ord.class_of(TupleId(0)));
        assert!(ord.would_conflict(a, b));
        ord.check_invariants().unwrap();
    }

    #[test]
    fn indirect_cycle_detected_via_closure() {
        let ie = instance();
        let mut ord = AttrOrder::new(&ie, AttrId(0));
        ord.insert_le(TupleId(2), TupleId(0)); // 1 ⪯ 16
        ord.insert_le(TupleId(0), TupleId(1)); // 16 ⪯ 27 (so 1 ⪯ 27)
        assert_eq!(ord.insert_le(TupleId(1), TupleId(2)), OrderInsert::Conflict);
    }

    #[test]
    fn greatest_requires_domination_of_all_classes() {
        let ie = instance();
        let mut ord = AttrOrder::new(&ie, AttrId(0));
        assert_eq!(ord.greatest(), None);
        ord.insert_le(TupleId(2), TupleId(1));
        ord.insert_le(TupleId(0), TupleId(1));
        // null class not yet below 27 → no greatest element
        assert_eq!(ord.greatest(), None);
        ord.insert_le(TupleId(3), TupleId(1));
        let (_, v) = ord.greatest().expect("27 dominates all");
        assert_eq!(v, &Value::Int(27));
    }

    #[test]
    fn greatest_of_single_class_column() {
        let schema = Schema::builder("r").attr("a", DataType::Int).build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![vec![Value::Int(5)], vec![Value::Int(5)]],
        )
        .unwrap();
        let ord = AttrOrder::new(&ie, AttrId(0));
        assert_eq!(ord.greatest().unwrap().1, &Value::Int(5));

        let all_null =
            EntityInstance::from_rows(schema, vec![vec![Value::Null], vec![Value::Null]]).unwrap();
        let ord = AttrOrder::new(&all_null, AttrId(0));
        assert_eq!(ord.greatest(), None);
    }

    #[test]
    fn related_tuple_pairs_reflect_classes() {
        let ie = instance();
        let mut ord = AttrOrder::new(&ie, AttrId(1));
        // class(x) ⪯ class(y): t1,t3 ⪯ t2
        ord.insert_le(TupleId(0), TupleId(1));
        let pairs = ord.related_tuple_pairs();
        assert!(pairs.contains(&(TupleId(0), TupleId(1))));
        assert!(pairs.contains(&(TupleId(2), TupleId(1))));
        // same-class pairs both ways
        assert!(pairs.contains(&(TupleId(0), TupleId(2))));
        assert!(pairs.contains(&(TupleId(2), TupleId(0))));
        assert!(!pairs.contains(&(TupleId(1), TupleId(0))));
    }

    #[test]
    fn accuracy_orders_wrapper() {
        let ie = instance();
        let mut orders = AccuracyOrders::new(&ie);
        assert_eq!(orders.arity(), 2);
        assert_eq!(orders.total_edges(), 0);
        orders.attr_mut(AttrId(0)).insert_le(TupleId(0), TupleId(1));
        assert!(orders.holds_lt(AttrId(0), TupleId(0), TupleId(1)));
        assert!(!orders.holds_lt(AttrId(1), TupleId(0), TupleId(1)));
        assert!(orders.total_edges() >= 1);
        assert_eq!(orders.iter().count(), 2);
    }
}
