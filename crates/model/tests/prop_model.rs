//! Property-based tests for the data model: value comparison laws, bit-set
//! behaviour against a reference set, and partial-order invariants under random
//! insertion sequences.

use proptest::prelude::*;
use relacc_model::{
    AttrId, AttrOrder, BitSet, CmpOp, DataType, EntityInstance, OrderInsert, Schema, TupleId, Value,
};
use std::collections::BTreeSet;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-50i64..50).prop_map(Value::Int),
        (-50i64..50).prop_map(|i| Value::Float(i as f64 / 2.0)),
        "[a-e]{1,3}".prop_map(Value::text),
    ]
}

proptest! {
    /// `compare` must agree with the flipped operator on swapped operands.
    #[test]
    fn cmp_flip_consistency(a in arb_value(), b in arb_value()) {
        for op in CmpOp::ALL {
            prop_assert_eq!(a.eval(op, &b), b.eval(op.flip(), &a));
        }
    }

    /// Value equality (`same`) is symmetric and reflexive.
    #[test]
    fn same_is_reflexive_and_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert!(a.same(&a));
        prop_assert_eq!(a.same(&b), b.same(&a));
    }

    /// `Eq`/`Hash` agreement: equal values hash identically.
    #[test]
    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// The bit set behaves like a `BTreeSet<usize>` under inserts and removes.
    #[test]
    fn bitset_matches_reference(ops in prop::collection::vec((0usize..200, any::<bool>()), 0..120)) {
        let mut bs = BitSet::with_capacity(200);
        let mut reference = BTreeSet::new();
        for (i, insert) in ops {
            if insert {
                bs.insert(i);
                reference.insert(i);
            } else {
                bs.remove(i);
                reference.remove(&i);
            }
        }
        prop_assert_eq!(bs.count(), reference.len());
        let got: Vec<usize> = bs.iter().collect();
        let want: Vec<usize> = reference.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}

/// Build an entity instance with a single int column holding `values`.
fn int_instance(values: &[Option<i64>]) -> EntityInstance {
    let schema = Schema::builder("r").attr("a", DataType::Int).build();
    EntityInstance::from_rows(
        schema,
        values
            .iter()
            .map(|v| vec![v.map_or(Value::Null, Value::Int)])
            .collect(),
    )
    .unwrap()
}

proptest! {
    /// Random insertion sequences either keep the order a valid strict partial
    /// order (checked invariants) or are rejected as conflicts; accepted pairs
    /// are always queryable afterwards.
    #[test]
    fn attr_order_invariants_under_random_inserts(
        values in prop::collection::vec(prop::option::of(0i64..6), 2..10),
        pairs in prop::collection::vec((0usize..10, 0usize..10), 0..40),
    ) {
        let ie = int_instance(&values);
        let n = ie.len();
        let mut ord = AttrOrder::new(&ie, AttrId(0));
        for (i, j) in pairs {
            let (i, j) = (i % n, j % n);
            let before_edges = ord.edge_count();
            match ord.insert_le(TupleId(i), TupleId(j)) {
                OrderInsert::Added(added) => {
                    prop_assert!(ord.holds_le(TupleId(i), TupleId(j)));
                    prop_assert_eq!(ord.edge_count(), before_edges + added.len());
                }
                OrderInsert::NoChange => {
                    prop_assert!(ord.holds_le(TupleId(i), TupleId(j)));
                    prop_assert_eq!(ord.edge_count(), before_edges);
                }
                OrderInsert::Conflict => {
                    // the reverse strict relation must already hold
                    prop_assert!(ord.holds_lt(TupleId(j), TupleId(i)));
                    prop_assert_eq!(ord.edge_count(), before_edges);
                }
            }
            ord.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// The λ (greatest) element, when it exists, dominates every tuple.
    #[test]
    fn greatest_dominates_everything(
        values in prop::collection::vec(prop::option::of(0i64..5), 2..8),
        pairs in prop::collection::vec((0usize..8, 0usize..8), 0..30),
    ) {
        let ie = int_instance(&values);
        let n = ie.len();
        let mut ord = AttrOrder::new(&ie, AttrId(0));
        for (i, j) in pairs {
            let _ = ord.insert_le(TupleId(i % n), TupleId(j % n));
        }
        if let Some((top_class, top_value)) = ord.greatest() {
            prop_assert!(!top_value.is_null());
            for t in 0..n {
                prop_assert!(ord.class_le(ord.class_of(TupleId(t)), top_class));
            }
        }
    }
}
