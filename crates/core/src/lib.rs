//! # relacc-core
//!
//! The primary contribution of *"Determining the Relative Accuracy of
//! Attributes"* (Cao, Fan, Yu — SIGMOD 2013), as a Rust library:
//!
//! * the **accuracy-rule language** ([`rules`]) — form-(1) rules over tuple
//!   pairs, form-(2) rules over master data, the built-in axioms ϕ7–ϕ9, a
//!   textual rule syntax with parser/printer, the constant-CFD translation of
//!   Section 2.1's remark, and a small rule-discovery profiler;
//! * the **chase inference system** ([`chase`]) — specifications
//!   `S = (D0, Σ, Im, te)`, grounding (`Instantiation`), the event index `H`,
//!   algorithm **IsCR** deciding the Church-Rosser property and computing the
//!   deduced target tuple, a naive (index-free) chase for ablations, and a
//!   free-order chase used as a semantic oracle in tests;
//! * the **compile-once pipeline** ([`chase::ChasePlan`] /
//!   [`chase::ChaseScratch`]) — rules validated, strings interned and
//!   form-(2) rules pre-grounded once per workload, then evaluated against
//!   any number of entity instances with reusable per-worker buffers (the
//!   substrate of `relacc-engine`'s parallel batch driver).
//!
//! Top-k candidate-target computation lives in `relacc-topk`; the interactive
//! framework of Fig. 3 lives in `relacc-framework`.
//!
//! ## Quick example
//!
//! ```
//! use relacc_core::chase::{is_cr, Specification};
//! use relacc_core::rules::{parse_ruleset, RuleSet};
//! use relacc_model::{DataType, EntityInstance, Schema, Value};
//!
//! let schema = Schema::builder("stat")
//!     .attr("rnds", DataType::Int)
//!     .attr("totalPts", DataType::Int)
//!     .build();
//! let ie = EntityInstance::from_rows(
//!     schema.clone(),
//!     vec![
//!         vec![Value::Int(16), Value::Int(424)],
//!         vec![Value::Int(27), Value::Int(772)],
//!     ],
//! )
//! .unwrap();
//! let rules = parse_ruleset(
//!     "rule phi1: t1[rnds] < t2[rnds] -> t1 <= t2 on rnds\n\
//!      rule phi3: t1 < t2 on rnds -> t1 <= t2 on totalPts\n",
//!     &schema,
//!     &[],
//! )
//! .unwrap();
//! let spec = Specification::new(ie, rules);
//! let run = is_cr(&spec);
//! let target = run.outcome.target().unwrap();
//! assert_eq!(target.value(schema.expect_attr("totalPts")), &Value::Int(772));
//! ```
//!
//! For a corpus of entities sharing one rule set, compile a
//! [`chase::ChasePlan`] once and evaluate it per entity instead of building a
//! [`Specification`] per entity:
//!
//! ```
//! # use relacc_core::chase::{is_cr, ChasePlan, ChaseScratch, Specification};
//! # use relacc_core::rules::parse_ruleset;
//! # use relacc_model::{DataType, EntityInstance, Schema, Value};
//! # let schema = Schema::builder("stat")
//! #     .attr("rnds", DataType::Int)
//! #     .attr("totalPts", DataType::Int)
//! #     .build();
//! # let rules = parse_ruleset(
//! #     "rule phi1: t1[rnds] < t2[rnds] -> t1 <= t2 on rnds\n",
//! #     &schema,
//! #     &[],
//! # )
//! # .unwrap();
//! let plan = ChasePlan::compile(schema.clone(), rules, vec![]).unwrap();
//! let mut scratch = ChaseScratch::new();
//! for seed in 0..10i64 {
//!     let ie = EntityInstance::from_rows(
//!         schema.clone(),
//!         vec![
//!             vec![Value::Int(seed), Value::Int(1)],
//!             vec![Value::Int(seed + 1), Value::Int(2)],
//!         ],
//!     )
//!     .unwrap();
//!     let run = plan.is_cr_with(&ie, &mut scratch);
//!     assert!(run.outcome.is_church_rosser());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chase;
pub mod rules;

pub use chase::{
    chase_with_grounding, deduced_target, is_cr, naive_is_cr, AccuracyInstance, ChaseCheckpoint,
    ChasePlan, ChaseRun, ChaseScratch, ChaseStats, CheckScratch, Conflict, Grounding, IsCrOutcome,
    Specification,
};
pub use rules::{AccuracyRule, AxiomConfig, MasterRule, RuleSet, TupleRule};
