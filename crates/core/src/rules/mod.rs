//! Accuracy rules (ARs): abstract syntax, built-in axioms, the rule-text
//! parser, constant-CFD translation and rudimentary rule discovery.

pub mod ast;
pub mod axioms;
pub mod cfd;
pub mod discovery;
pub mod parser;

pub use ast::{
    AccuracyRule, AxiomConfig, MasterPremise, MasterRule, Operand, Predicate, RuleSet,
    RuleValidationError, TupleRef, TupleRule,
};
pub use axioms::{expand_axioms, phi7, phi8, phi9};
pub use cfd::{cfds_to_rules, violations, CfdTranslation, ConstantCfd};
pub use discovery::{
    discover_correlation_rules, discover_currency_rules, discover_rules, DiscoveredRule,
    DiscoveryConfig, TrainingExample,
};
pub use parser::{format_rule, format_ruleset, parse_rule, parse_ruleset, ParseError};
