//! Abstract syntax of accuracy rules (ARs).
//!
//! Section 2.1 of the paper defines two forms of rules:
//!
//! * **Form (1)** — [`TupleRule`]: `∀ t1, t2 ∈ R ( ω → t1 ⪯_{A_i} t2 )`, where
//!   `ω` is a conjunction of comparison predicates over `t1`, `t2`, constants
//!   and the target tuple `te`, and of order predicates `t1 ≺_{A_l} t2` /
//!   `t1 ⪯_{A_l} t2`.
//! * **Form (2)** — [`MasterRule`]: `∀ tm ∈ Rm ( ω → te[A_i] = tm[B] )`, where
//!   `ω` only constrains the target tuple against constants and the master
//!   tuple.  A rule may assign several attributes at once (the paper's ϕ6
//!   instantiates `league` and `team` together).
//!
//! The built-in axioms ϕ7–ϕ9 are represented by [`AxiomConfig`]; see
//! [`crate::rules::axioms`] for their explicit rule expansion.

use relacc_model::{AttrId, CmpOp, Interner, SchemaRef, Value};
use std::fmt;

/// Which of the two universally quantified tuples a form-(1) operand refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TupleRef {
    /// The first tuple `t1` (the one concluded to be *less* accurate).
    T1,
    /// The second tuple `t2` (the one concluded to be *more* accurate).
    T2,
}

impl fmt::Display for TupleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TupleRef::T1 => f.write_str("t1"),
            TupleRef::T2 => f.write_str("t2"),
        }
    }
}

/// An operand of a comparison predicate in a form-(1) rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// `t1[A]` or `t2[A]`.
    Attr(TupleRef, AttrId),
    /// A constant.
    Const(Value),
    /// `te[A]` — the current value of the target template.
    Target(AttrId),
}

impl Operand {
    /// The attribute mentioned by the operand, if any.
    pub fn attr(&self) -> Option<AttrId> {
        match self {
            Operand::Attr(_, a) | Operand::Target(a) => Some(*a),
            Operand::Const(_) => None,
        }
    }
}

/// A premise of a form-(1) rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `left op right` over tuple attributes, constants and target attributes.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// `t1 ≺_{A} t2` — strict relative accuracy already deduced on `A`.
    OrderLt {
        /// The attribute the order refers to.
        attr: AttrId,
    },
    /// `t1 ⪯_{A} t2` — non-strict relative accuracy on `A`.
    OrderLe {
        /// The attribute the order refers to.
        attr: AttrId,
    },
}

impl Predicate {
    /// Convenience constructor for `t1[a] op t2[a]`.
    pub fn cmp_attrs(a: AttrId, op: CmpOp) -> Self {
        Predicate::Cmp {
            left: Operand::Attr(TupleRef::T1, a),
            op,
            right: Operand::Attr(TupleRef::T2, a),
        }
    }

    /// Convenience constructor for `t[a] op c`.
    pub fn cmp_const(t: TupleRef, a: AttrId, op: CmpOp, c: Value) -> Self {
        Predicate::Cmp {
            left: Operand::Attr(t, a),
            op,
            right: Operand::Const(c),
        }
    }
}

/// A form-(1) accuracy rule: `∀ t1, t2 (R(t1) ∧ R(t2) ∧ premises → t1 ⪯_{conclusion} t2)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleRule {
    /// Rule name (e.g. `phi1`), used in diagnostics and reports.
    pub name: String,
    /// The conjunction `ω` of premises.
    pub premises: Vec<Predicate>,
    /// The attribute `A_i` of the conclusion `t1 ⪯_{A_i} t2`.
    pub conclusion: AttrId,
    /// Optional free-form tag (the generators mark e.g. `currency` or `cfd`
    /// rules so the DeduceOrder baseline can select its inputs).
    pub tag: Option<String>,
}

impl TupleRule {
    /// Create a rule with no tag.
    pub fn new(name: impl Into<String>, premises: Vec<Predicate>, conclusion: AttrId) -> Self {
        TupleRule {
            name: name.into(),
            premises,
            conclusion,
            tag: None,
        }
    }

    /// Attach a tag (builder style).
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }
}

/// A premise of a form-(2) rule.
#[derive(Debug, Clone, PartialEq)]
pub enum MasterPremise {
    /// `te[A] = c` for a constant `c`.
    TargetEqConst(AttrId, Value),
    /// `te[A] = tm[B]` for a master attribute `B`.
    TargetEqMaster(AttrId, AttrId),
    /// `tm[B] = c` — a selection on the master tuple itself.  Strictly this is
    /// syntactic sugar beyond the paper's grammar, but the paper's own ϕ6 uses
    /// it (`tm[season] = "1994-95"`); it folds away at grounding time.
    MasterEqConst(AttrId, Value),
}

/// A form-(2) accuracy rule:
/// `∀ tm ∈ Rm ( premises → te[A_1] = tm[B_1] ∧ ... ∧ te[A_j] = tm[B_j] )`.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterRule {
    /// Rule name (e.g. `phi6`).
    pub name: String,
    /// Which master relation of the specification this rule ranges over
    /// (specifications may carry several master relations, e.g. curated
    /// reference data plus CFD-derived pattern tableaux).
    pub master_index: usize,
    /// The conjunction `ω` of premises.
    pub premises: Vec<MasterPremise>,
    /// Assignments `te[A_i] := tm[B]`.
    pub assignments: Vec<(AttrId, AttrId)>,
    /// Optional free-form tag.
    pub tag: Option<String>,
}

impl MasterRule {
    /// Create a rule over master relation `0` with no tag.
    pub fn new(
        name: impl Into<String>,
        premises: Vec<MasterPremise>,
        assignments: Vec<(AttrId, AttrId)>,
    ) -> Self {
        MasterRule {
            name: name.into(),
            master_index: 0,
            premises,
            assignments,
            tag: None,
        }
    }

    /// Set the master-relation index (builder style).
    pub fn over_master(mut self, idx: usize) -> Self {
        self.master_index = idx;
        self
    }

    /// Attach a tag (builder style).
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }
}

/// Either form of accuracy rule.
#[derive(Debug, Clone, PartialEq)]
pub enum AccuracyRule {
    /// Form (1).
    Tuple(TupleRule),
    /// Form (2).
    Master(MasterRule),
}

impl AccuracyRule {
    /// The rule's name.
    pub fn name(&self) -> &str {
        match self {
            AccuracyRule::Tuple(r) => &r.name,
            AccuracyRule::Master(r) => &r.name,
        }
    }

    /// The rule's tag, if any.
    pub fn tag(&self) -> Option<&str> {
        match self {
            AccuracyRule::Tuple(r) => r.tag.as_deref(),
            AccuracyRule::Master(r) => r.tag.as_deref(),
        }
    }

    /// True for form-(1) rules.
    pub fn is_tuple_rule(&self) -> bool {
        matches!(self, AccuracyRule::Tuple(_))
    }

    /// True for form-(2) rules.
    pub fn is_master_rule(&self) -> bool {
        matches!(self, AccuracyRule::Master(_))
    }
}

impl From<TupleRule> for AccuracyRule {
    fn from(r: TupleRule) -> Self {
        AccuracyRule::Tuple(r)
    }
}

impl From<MasterRule> for AccuracyRule {
    fn from(r: MasterRule) -> Self {
        AccuracyRule::Master(r)
    }
}

/// Which of the built-in axiom rules ϕ7–ϕ9 (Example 3) are in force.
///
/// The paper includes all three "in any set of ARs"; they are configurable here
/// so that ablation experiments and the axiom-expansion tests can switch them
/// off individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiomConfig {
    /// ϕ7: a null value has the lowest accuracy
    /// (`t1[A] = null ∧ t2[A] ≠ null → t1 ⪯_A t2`).
    pub null_lowest: bool,
    /// ϕ8: a defined target value has the highest accuracy
    /// (`t2[A] = te[A] ∧ te[A] ≠ null → t1 ⪯_A t2`).
    pub target_highest: bool,
    /// ϕ9: equal values are equally accurate (`t1[A] = t2[A] → t1 ⪯_A t2`).
    ///
    /// Note: ϕ9 is a structural consequence of the value-class representation
    /// of [`relacc_model::AttrOrder`]; the flag is kept for documentation and
    /// for the explicit axiom-expansion used in the equivalence tests.
    pub equal_values: bool,
}

impl Default for AxiomConfig {
    fn default() -> Self {
        AxiomConfig {
            null_lowest: true,
            target_highest: true,
            equal_values: true,
        }
    }
}

impl AxiomConfig {
    /// All axioms disabled (only the explicit rules of `Σ` apply).
    pub fn none() -> Self {
        AxiomConfig {
            null_lowest: false,
            target_highest: false,
            equal_values: false,
        }
    }
}

/// A set `Σ` of accuracy rules together with the axiom configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuleSet {
    rules: Vec<AccuracyRule>,
    /// Axioms in force for any specification using this rule set.
    pub axioms: AxiomConfig,
}

impl RuleSet {
    /// An empty rule set with the default axioms.
    pub fn new() -> Self {
        RuleSet {
            rules: Vec::new(),
            axioms: AxiomConfig::default(),
        }
    }

    /// Build a rule set from rules, keeping the default axioms.
    pub fn from_rules<I, R>(rules: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: Into<AccuracyRule>,
    {
        RuleSet {
            rules: rules.into_iter().map(Into::into).collect(),
            axioms: AxiomConfig::default(),
        }
    }

    /// Number of rules `|Σ|` (axioms not counted, as in the paper's figures).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if there are no explicit rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Append a rule.
    pub fn push(&mut self, rule: impl Into<AccuracyRule>) {
        self.rules.push(rule.into());
    }

    /// Append many rules.
    pub fn extend<I, R>(&mut self, rules: I)
    where
        I: IntoIterator<Item = R>,
        R: Into<AccuracyRule>,
    {
        self.rules.extend(rules.into_iter().map(Into::into));
    }

    /// All rules in insertion order.
    pub fn rules(&self) -> &[AccuracyRule] {
        &self.rules
    }

    /// The rule at `idx`.
    pub fn rule(&self, idx: usize) -> &AccuracyRule {
        &self.rules[idx]
    }

    /// Number of form-(1) rules.
    pub fn count_tuple_rules(&self) -> usize {
        self.rules.iter().filter(|r| r.is_tuple_rule()).count()
    }

    /// Number of form-(2) rules.
    pub fn count_master_rules(&self) -> usize {
        self.rules.iter().filter(|r| r.is_master_rule()).count()
    }

    /// A copy keeping only form-(1) rules (used by the "ARs of form (1) only"
    /// configurations of Exp-1 and Exp-2).
    pub fn only_tuple_rules(&self) -> RuleSet {
        RuleSet {
            rules: self
                .rules
                .iter()
                .filter(|r| r.is_tuple_rule())
                .cloned()
                .collect(),
            axioms: self.axioms,
        }
    }

    /// A copy keeping only form-(2) rules.
    pub fn only_master_rules(&self) -> RuleSet {
        RuleSet {
            rules: self
                .rules
                .iter()
                .filter(|r| r.is_master_rule())
                .cloned()
                .collect(),
            axioms: self.axioms,
        }
    }

    /// A copy keeping only the first `n` rules (used by the `‖Σ‖`-scaling
    /// experiments, Fig. 6(j)).
    pub fn truncated(&self, n: usize) -> RuleSet {
        RuleSet {
            rules: self.rules.iter().take(n).cloned().collect(),
            axioms: self.axioms,
        }
    }

    /// A copy keeping only rules carrying the given tag.
    pub fn with_tag(&self, tag: &str) -> RuleSet {
        RuleSet {
            rules: self
                .rules
                .iter()
                .filter(|r| r.tag() == Some(tag))
                .cloned()
                .collect(),
            axioms: self.axioms,
        }
    }

    /// Intern every constant value appearing in rule premises, so grounded
    /// predicates compare interned ids against interned master/entity values
    /// (used by `ChasePlan::compile`).
    pub(crate) fn intern_constants(&mut self, interner: &mut Interner) {
        for rule in &mut self.rules {
            match rule {
                AccuracyRule::Tuple(t) => {
                    for p in &mut t.premises {
                        if let Predicate::Cmp { left, right, .. } = p {
                            for operand in [left, right] {
                                if let Operand::Const(v) = operand {
                                    interner.intern_value(v);
                                }
                            }
                        }
                    }
                }
                AccuracyRule::Master(m) => {
                    for p in &mut m.premises {
                        match p {
                            MasterPremise::TargetEqConst(_, v)
                            | MasterPremise::MasterEqConst(_, v) => interner.intern_value(v),
                            MasterPremise::TargetEqMaster(_, _) => {}
                        }
                    }
                }
            }
        }
    }

    /// Validate every rule against the entity schema and the master schemas.
    ///
    /// `master_arities[i]` is the arity of the specification's `i`-th master
    /// relation.
    pub fn validate(
        &self,
        schema: &SchemaRef,
        master_arities: &[usize],
    ) -> Result<(), RuleValidationError> {
        let arity = schema.arity();
        let check_attr = |rule: &str, a: AttrId| {
            if a.0 >= arity {
                Err(RuleValidationError {
                    rule: rule.to_string(),
                    message: format!("attribute {a} out of range for schema of arity {arity}"),
                })
            } else {
                Ok(())
            }
        };
        for r in &self.rules {
            match r {
                AccuracyRule::Tuple(t) => {
                    check_attr(&t.name, t.conclusion)?;
                    for p in &t.premises {
                        match p {
                            Predicate::Cmp { left, right, .. } => {
                                if let Some(a) = left.attr() {
                                    check_attr(&t.name, a)?;
                                }
                                if let Some(a) = right.attr() {
                                    check_attr(&t.name, a)?;
                                }
                            }
                            Predicate::OrderLt { attr } | Predicate::OrderLe { attr } => {
                                check_attr(&t.name, *attr)?;
                            }
                        }
                    }
                }
                AccuracyRule::Master(m) => {
                    let m_arity = master_arities.get(m.master_index).copied().ok_or_else(|| {
                        RuleValidationError {
                            rule: m.name.clone(),
                            message: format!(
                                "master relation index {} out of range ({} available)",
                                m.master_index,
                                master_arities.len()
                            ),
                        }
                    })?;
                    let check_master_attr = |rule: &str, b: AttrId| {
                        if b.0 >= m_arity {
                            Err(RuleValidationError {
                                rule: rule.to_string(),
                                message: format!(
                                    "master attribute {b} out of range for arity {m_arity}"
                                ),
                            })
                        } else {
                            Ok(())
                        }
                    };
                    if m.assignments.is_empty() {
                        return Err(RuleValidationError {
                            rule: m.name.clone(),
                            message: "master rule has no assignments".to_string(),
                        });
                    }
                    for p in &m.premises {
                        match p {
                            MasterPremise::TargetEqConst(a, _) => check_attr(&m.name, *a)?,
                            MasterPremise::TargetEqMaster(a, b) => {
                                check_attr(&m.name, *a)?;
                                check_master_attr(&m.name, *b)?;
                            }
                            MasterPremise::MasterEqConst(b, _) => {
                                check_master_attr(&m.name, *b)?;
                            }
                        }
                    }
                    for (a, b) in &m.assignments {
                        check_attr(&m.name, *a)?;
                        check_master_attr(&m.name, *b)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// A rule referencing an attribute that does not exist, or otherwise malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleValidationError {
    /// Name of the offending rule.
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RuleValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for RuleValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_model::{DataType, Schema};

    fn schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("league", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("J#", DataType::Int)
            .build()
    }

    fn phi1(schema: &SchemaRef) -> TupleRule {
        let league = schema.expect_attr("league");
        let rnds = schema.expect_attr("rnds");
        TupleRule::new(
            "phi1",
            vec![
                Predicate::cmp_attrs(league, CmpOp::Eq),
                Predicate::cmp_attrs(rnds, CmpOp::Lt),
            ],
            rnds,
        )
    }

    #[test]
    fn rule_set_counting_and_filtering() {
        let s = schema();
        let mut rs = RuleSet::new();
        rs.push(phi1(&s));
        rs.push(
            TupleRule::new(
                "phi2",
                vec![Predicate::OrderLt {
                    attr: s.expect_attr("rnds"),
                }],
                s.expect_attr("J#"),
            )
            .with_tag("currency"),
        );
        rs.push(MasterRule::new(
            "phi6",
            vec![MasterPremise::TargetEqMaster(AttrId(0), AttrId(0))],
            vec![(AttrId(0), AttrId(1))],
        ));
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.count_tuple_rules(), 2);
        assert_eq!(rs.count_master_rules(), 1);
        assert_eq!(rs.only_tuple_rules().len(), 2);
        assert_eq!(rs.only_master_rules().len(), 1);
        assert_eq!(rs.truncated(1).len(), 1);
        assert_eq!(rs.with_tag("currency").len(), 1);
        assert_eq!(rs.rule(0).name(), "phi1");
        assert!(rs.rule(2).is_master_rule());
    }

    #[test]
    fn validation_catches_out_of_range_attributes() {
        let s = schema();
        let mut rs = RuleSet::new();
        rs.push(TupleRule::new("bad", vec![], AttrId(9)));
        assert!(rs.validate(&s, &[2]).is_err());

        let mut rs = RuleSet::new();
        rs.push(MasterRule::new(
            "bad_master",
            vec![MasterPremise::TargetEqMaster(AttrId(0), AttrId(7))],
            vec![(AttrId(0), AttrId(0))],
        ));
        assert!(rs.validate(&s, &[2]).is_err());
        // index out of range of the available master relations
        let mut rs = RuleSet::new();
        rs.push(MasterRule::new("m", vec![], vec![(AttrId(0), AttrId(0))]).over_master(3));
        assert!(rs.validate(&s, &[2]).is_err());
    }

    #[test]
    fn validation_accepts_well_formed_rules() {
        let s = schema();
        let rs = RuleSet::from_rules([AccuracyRule::from(phi1(&s))]);
        assert!(rs.validate(&s, &[]).is_ok());
        assert_eq!(rs.axioms, AxiomConfig::default());
        assert!(AxiomConfig::none() != AxiomConfig::default());
    }

    #[test]
    fn master_rule_without_assignment_rejected() {
        let s = schema();
        let rs = RuleSet::from_rules([AccuracyRule::Master(MasterRule {
            name: "empty".into(),
            master_index: 0,
            premises: vec![],
            assignments: vec![],
            tag: None,
        })]);
        assert!(rs.validate(&s, &[1]).is_err());
    }
}
