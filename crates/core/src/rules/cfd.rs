//! Constant conditional functional dependencies (CFDs) and their translation
//! into accuracy rules.
//!
//! Section 2.1 (Remark) shows that a constant CFD such as
//! `[team = "Chicago Bulls" → arena = "United Center"]` can be expressed as a
//! form-(2) AR over a small master relation holding the CFD's pattern tuple:
//! `∀ tm ( tm[team] = te[team] → te[arena] = tm[arena] )`.  This module
//! implements that translation for an arbitrary set of constant CFDs: CFDs with
//! the same left-hand-side / right-hand-side attribute signature share a rule
//! and contribute one pattern tuple each.
//!
//! The same [`ConstantCfd`] type is reused by the `DeduceOrder` baseline in
//! `relacc-fusion`, which applies constant CFDs directly during conflict
//! resolution.

use super::ast::{MasterPremise, MasterRule};
use relacc_model::{AttrId, MasterRelation, Schema, SchemaRef, Value};
use std::collections::BTreeMap;

/// A constant CFD `[A_1 = c_1 ∧ ... ∧ A_j = c_j → B = b]` over the entity
/// schema `R`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantCfd {
    /// Pattern conditions on the left-hand side.
    pub conditions: Vec<(AttrId, Value)>,
    /// The constrained attribute and its required constant.
    pub conclusion: (AttrId, Value),
}

impl ConstantCfd {
    /// Convenience constructor.
    pub fn new(conditions: Vec<(AttrId, Value)>, conclusion: (AttrId, Value)) -> Self {
        ConstantCfd {
            conditions,
            conclusion,
        }
    }

    /// Does a complete tuple (given as a value lookup) satisfy this CFD?
    ///
    /// Returns `true` when the pattern does not apply (some condition differs)
    /// or when it applies and the conclusion holds.
    pub fn satisfied_by<F>(&self, value_of: F) -> bool
    where
        F: Fn(AttrId) -> Value,
    {
        let applies = self.conditions.iter().all(|(a, c)| value_of(*a).same(c));
        !applies || value_of(self.conclusion.0).same(&self.conclusion.1)
    }

    /// The signature grouping CFDs that can share a single form-(2) rule:
    /// the sorted LHS attributes plus the RHS attribute.
    fn signature(&self) -> (Vec<usize>, usize) {
        let mut lhs: Vec<usize> = self.conditions.iter().map(|(a, _)| a.0).collect();
        lhs.sort_unstable();
        (lhs, self.conclusion.0 .0)
    }
}

/// The result of translating a set of constant CFDs: a pattern-tableau master
/// relation plus the form-(2) rules ranging over it.
#[derive(Debug, Clone)]
pub struct CfdTranslation {
    /// The pattern tableau, one tuple per CFD.
    pub master: MasterRelation,
    /// One rule per CFD signature; their `master_index` is set to the value
    /// passed to [`cfds_to_rules`].
    pub rules: Vec<MasterRule>,
}

/// Translate constant CFDs over `schema` into a master relation and form-(2)
/// rules ranging over it (registered as master relation `master_index` of the
/// specification).
///
/// The tableau schema contains every attribute mentioned by any CFD, with the
/// same names and types as in `schema`; a CFD's tuple is null outside its own
/// attributes, and null premises/assignments are ignored at grounding, so CFDs
/// with different signatures do not interfere.
pub fn cfds_to_rules(
    schema: &SchemaRef,
    cfds: &[ConstantCfd],
    master_index: usize,
) -> CfdTranslation {
    // Collect the attributes mentioned anywhere, in schema order.
    let mut mentioned: Vec<AttrId> = Vec::new();
    for cfd in cfds {
        for (a, _) in &cfd.conditions {
            if !mentioned.contains(a) {
                mentioned.push(*a);
            }
        }
        if !mentioned.contains(&cfd.conclusion.0) {
            mentioned.push(cfd.conclusion.0);
        }
    }
    mentioned.sort_unstable();

    let mut builder = Schema::builder(format!("{}_cfd_tableau", schema.name()));
    for a in &mentioned {
        builder = builder.attr(schema.attr_name(*a), schema.attr_type(*a));
    }
    let tableau_schema = builder.build();
    let tableau_attr = |a: AttrId| -> AttrId {
        AttrId(
            mentioned
                .iter()
                .position(|m| *m == a)
                .expect("attribute collected above"),
        )
    };

    let mut master = MasterRelation::new(tableau_schema.clone());
    for cfd in cfds {
        let mut row = vec![Value::Null; tableau_schema.arity()];
        for (a, c) in &cfd.conditions {
            row[tableau_attr(*a).0] = c.clone();
        }
        row[tableau_attr(cfd.conclusion.0).0] = cfd.conclusion.1.clone();
        master
            .push_row(row)
            .expect("tableau rows conform to the tableau schema");
    }

    // One rule per signature.
    let mut by_signature: BTreeMap<(Vec<usize>, usize), MasterRule> = BTreeMap::new();
    for cfd in cfds {
        by_signature.entry(cfd.signature()).or_insert_with(|| {
            let premises = cfd
                .conditions
                .iter()
                .map(|(a, _)| MasterPremise::TargetEqMaster(*a, tableau_attr(*a)))
                .collect();
            let assignments = vec![(cfd.conclusion.0, tableau_attr(cfd.conclusion.0))];
            let lhs_names: Vec<&str> = cfd
                .conditions
                .iter()
                .map(|(a, _)| schema.attr_name(*a))
                .collect();
            MasterRule::new(
                format!(
                    "cfd[{} -> {}]",
                    lhs_names.join(","),
                    schema.attr_name(cfd.conclusion.0)
                ),
                premises,
                assignments,
            )
            .over_master(master_index)
            .with_tag("cfd")
        });
    }

    CfdTranslation {
        master,
        rules: by_signature.into_values().collect(),
    }
}

/// Check a complete value assignment against a set of CFDs, returning the
/// indices of violated CFDs.  Used to assert consistency of deduced targets.
pub fn violations<F>(cfds: &[ConstantCfd], value_of: F) -> Vec<usize>
where
    F: Fn(AttrId) -> Value,
{
    cfds.iter()
        .enumerate()
        .filter(|(_, cfd)| !cfd.satisfied_by(&value_of))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_model::DataType;

    fn schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("team", DataType::Text)
            .attr("arena", DataType::Text)
            .attr("league", DataType::Text)
            .build()
    }

    fn bulls_cfd(s: &SchemaRef) -> ConstantCfd {
        ConstantCfd::new(
            vec![(s.expect_attr("team"), Value::text("Chicago Bulls"))],
            (s.expect_attr("arena"), Value::text("United Center")),
        )
    }

    #[test]
    fn satisfaction_semantics() {
        let s = schema();
        let cfd = bulls_cfd(&s);
        // pattern applies, conclusion holds
        assert!(cfd.satisfied_by(|a| match s.attr_name(a) {
            "team" => Value::text("Chicago Bulls"),
            "arena" => Value::text("United Center"),
            _ => Value::Null,
        }));
        // pattern applies, conclusion violated
        assert!(!cfd.satisfied_by(|a| match s.attr_name(a) {
            "team" => Value::text("Chicago Bulls"),
            "arena" => Value::text("Chicago Stadium"),
            _ => Value::Null,
        }));
        // pattern does not apply
        assert!(cfd.satisfied_by(|a| match s.attr_name(a) {
            "team" => Value::text("Barons"),
            _ => Value::Null,
        }));
    }

    #[test]
    fn translation_builds_tableau_and_rules() {
        let s = schema();
        let cfds = vec![
            bulls_cfd(&s),
            ConstantCfd::new(
                vec![(s.expect_attr("team"), Value::text("Birmingham Barons"))],
                (s.expect_attr("arena"), Value::text("Regions Park")),
            ),
            ConstantCfd::new(
                vec![(s.expect_attr("league"), Value::text("NBA"))],
                (s.expect_attr("arena"), Value::text("some NBA arena")),
            ),
        ];
        let translation = cfds_to_rules(&s, &cfds, 2);
        // one tableau tuple per CFD
        assert_eq!(translation.master.len(), 3);
        // two signatures: team→arena (shared by 2 CFDs) and league→arena
        assert_eq!(translation.rules.len(), 2);
        assert!(translation.rules.iter().all(|r| r.master_index == 2));
        assert!(translation
            .rules
            .iter()
            .all(|r| r.tag.as_deref() == Some("cfd")));
        // tableau schema covers exactly the mentioned attributes
        assert_eq!(translation.master.schema().arity(), 3);
    }

    #[test]
    fn violation_listing() {
        let s = schema();
        let cfds = vec![bulls_cfd(&s)];
        let bad = violations(&cfds, |a| match s.attr_name(a) {
            "team" => Value::text("Chicago Bulls"),
            "arena" => Value::text("Regions Park"),
            _ => Value::Null,
        });
        assert_eq!(bad, vec![0]);
        let good = violations(&cfds, |a| match s.attr_name(a) {
            "team" => Value::text("Chicago Bulls"),
            "arena" => Value::text("United Center"),
            _ => Value::Null,
        });
        assert!(good.is_empty());
    }
}
