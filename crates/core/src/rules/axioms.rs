//! Explicit expansion of the built-in axiom rules ϕ7–ϕ9.
//!
//! The chase engine handles the axioms *structurally* (see
//! `crate::chase::iscr`): ϕ9 is a consequence of the value-class representation
//! of the orders, ϕ7 seeds the null class below every other class, and ϕ8 is
//! triggered whenever a target attribute becomes defined.  This module provides
//! the equivalent *explicit* form-(1) rules so that
//!
//! * small examples and tests can verify that the structural handling matches
//!   the literal reading of the paper, and
//! * users can inspect or pretty-print the complete rule set including axioms.

use super::ast::{Operand, Predicate, TupleRef, TupleRule};
use relacc_model::{AttrId, CmpOp, SchemaRef, Value};

/// The ϕ7 rule for attribute `a`:
/// `t1[A] = null ∧ t2[A] ≠ null → t1 ⪯_A t2`.
pub fn phi7(a: AttrId) -> TupleRule {
    TupleRule::new(
        format!("phi7[{a}]"),
        vec![
            Predicate::cmp_const(TupleRef::T1, a, CmpOp::Eq, Value::Null),
            Predicate::cmp_const(TupleRef::T2, a, CmpOp::Ne, Value::Null),
        ],
        a,
    )
    .with_tag("axiom")
}

/// The ϕ8 rule for attribute `a`:
/// `t2[A] = te[A] ∧ te[A] ≠ null → t1 ⪯_A t2`.
pub fn phi8(a: AttrId) -> TupleRule {
    TupleRule::new(
        format!("phi8[{a}]"),
        vec![
            Predicate::Cmp {
                left: Operand::Attr(TupleRef::T2, a),
                op: CmpOp::Eq,
                right: Operand::Target(a),
            },
            Predicate::Cmp {
                left: Operand::Target(a),
                op: CmpOp::Ne,
                right: Operand::Const(Value::Null),
            },
        ],
        a,
    )
    .with_tag("axiom")
}

/// The ϕ9 rule for attribute `a`: `t1[A] = t2[A] → t1 ⪯_A t2`.
pub fn phi9(a: AttrId) -> TupleRule {
    TupleRule::new(
        format!("phi9[{a}]"),
        vec![Predicate::cmp_attrs(a, CmpOp::Eq)],
        a,
    )
    .with_tag("axiom")
}

/// Expand the enabled axioms of `config` over every attribute of `schema`.
pub fn expand_axioms(schema: &SchemaRef, config: super::ast::AxiomConfig) -> Vec<TupleRule> {
    let mut rules = Vec::new();
    for a in schema.attr_ids() {
        if config.null_lowest {
            rules.push(phi7(a));
        }
        if config.target_highest {
            rules.push(phi8(a));
        }
        if config.equal_values {
            rules.push(phi9(a));
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ast::AxiomConfig;
    use relacc_model::{DataType, Schema};

    #[test]
    fn expansion_counts_follow_config() {
        let schema = Schema::builder("r")
            .attr("a", DataType::Int)
            .attr("b", DataType::Text)
            .build();
        assert_eq!(expand_axioms(&schema, AxiomConfig::default()).len(), 6);
        assert_eq!(expand_axioms(&schema, AxiomConfig::none()).len(), 0);
        let only_null = AxiomConfig {
            null_lowest: true,
            target_highest: false,
            equal_values: false,
        };
        let rules = expand_axioms(&schema, only_null);
        assert_eq!(rules.len(), 2);
        assert!(rules.iter().all(|r| r.name.starts_with("phi7")));
        assert!(rules.iter().all(|r| r.tag.as_deref() == Some("axiom")));
    }

    #[test]
    fn phi_rules_mention_their_attribute() {
        let a = AttrId(3);
        assert_eq!(phi7(a).conclusion, a);
        assert_eq!(phi8(a).conclusion, a);
        assert_eq!(phi9(a).conclusion, a);
        assert_eq!(phi9(a).premises.len(), 1);
        assert_eq!(phi8(a).premises.len(), 2);
    }
}
