//! A textual rule language for accuracy rules, close to the paper's notation.
//!
//! Form-(1) rules (`TupleRule`):
//!
//! ```text
//! rule phi1: t1[league] = t2[league] && t1[rnds] < t2[rnds] -> t1 <= t2 on rnds
//! rule phi2: t1 < t2 on rnds -> t1 <= t2 on J#
//! ```
//!
//! Form-(2) rules (`MasterRule`), optionally naming which master relation they
//! range over (`over N`, default 0):
//!
//! ```text
//! master rule phi6: te[FN] = tm[FN] && te[LN] = tm[LN] && tm[season] = "1994-95"
//!     -> te[league] := tm[league], te[team] := tm[team]
//! ```
//!
//! Premise operands are `t1[attr]`, `t2[attr]`, `te[attr]`, `tm[attr]` (master
//! premises only) or literals (`"string"`, integers, floats, `true`, `false`,
//! `null`).  Order premises are written `t1 < t2 on attr` (strict, `≺`) and
//! `t1 <= t2 on attr` (`⪯`).  Lines starting with `#` and blank lines are
//! ignored; a rule may optionally end with `@tag`.
//!
//! [`format_rule`] renders a rule back to this syntax; parsing and formatting
//! round-trip (see the tests).

use super::ast::{
    AccuracyRule, MasterPremise, MasterRule, Operand, Predicate, RuleSet, TupleRef, TupleRule,
};
use relacc_model::{AttrId, CmpOp, SchemaRef, Value};
use std::fmt;

/// A rule-text parse error, with the 1-based line number when parsing a whole
/// rule set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 when parsing a single rule string).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            line: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed operand term before schema resolution.
#[derive(Debug, Clone, PartialEq)]
enum Term {
    T1(String),
    T2(String),
    Te(String),
    Tm(String),
    Lit(Value),
}

fn parse_literal(text: &str) -> Result<Value, ParseError> {
    let t = text.trim();
    if t.starts_with('"') {
        if t.len() >= 2 && t.ends_with('"') {
            return Ok(Value::text(t[1..t.len() - 1].replace("\\\"", "\"")));
        }
        return Err(ParseError::new(format!("unterminated string literal {t}")));
    }
    match t {
        "null" => return Ok(Value::Null),
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(x) = t.parse::<f64>() {
        return Ok(Value::Float(x));
    }
    Err(ParseError::new(format!(
        "cannot parse literal {t:?} (strings must be quoted)"
    )))
}

fn parse_term(text: &str) -> Result<Term, ParseError> {
    let t = text.trim();
    for (prefix, ctor) in [
        ("t1[", Term::T1 as fn(String) -> Term),
        ("t2[", Term::T2 as fn(String) -> Term),
        ("te[", Term::Te as fn(String) -> Term),
        ("tm[", Term::Tm as fn(String) -> Term),
    ] {
        if let Some(rest) = t.strip_prefix(prefix) {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| ParseError::new(format!("missing ']' in {t:?}")))?;
            if name.is_empty() {
                return Err(ParseError::new(format!("empty attribute name in {t:?}")));
            }
            return Ok(ctor(name.to_string()));
        }
    }
    parse_literal(t).map(Term::Lit)
}

/// Split a premise string `left OP right` at the first comparison operator that
/// is not inside a quoted literal or brackets.
fn split_comparison(text: &str) -> Result<(String, CmpOp, String), ParseError> {
    let bytes = text.as_bytes();
    let mut in_quotes = false;
    let mut in_brackets = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '"' => in_quotes = !in_quotes,
            '[' if !in_quotes => in_brackets = true,
            ']' if !in_quotes => in_brackets = false,
            '!' | '<' | '>' | '=' if !in_quotes && !in_brackets => {
                // longest-match operator at position i
                let two = text.get(i..i + 2).and_then(CmpOp::parse);
                let (op, width) = match two {
                    Some(op) => (op, 2),
                    None => match CmpOp::parse(&text[i..i + 1]) {
                        Some(op) => (op, 1),
                        None => {
                            i += 1;
                            continue;
                        }
                    },
                };
                let left = text[..i].trim().to_string();
                let right = text[i + width..].trim().to_string();
                if left.is_empty() || right.is_empty() {
                    return Err(ParseError::new(format!(
                        "comparison with a missing operand in {text:?}"
                    )));
                }
                return Ok((left, op, right));
            }
            _ => {}
        }
        i += 1;
    }
    Err(ParseError::new(format!(
        "no comparison operator found in premise {text:?}"
    )))
}

fn resolve_attr(schema: &SchemaRef, name: &str) -> Result<AttrId, ParseError> {
    schema.attr_id(name).ok_or_else(|| {
        ParseError::new(format!(
            "unknown attribute {name:?} of relation {}",
            schema.name()
        ))
    })
}

fn term_to_operand(term: Term, schema: &SchemaRef) -> Result<Operand, ParseError> {
    match term {
        Term::T1(a) => Ok(Operand::Attr(TupleRef::T1, resolve_attr(schema, &a)?)),
        Term::T2(a) => Ok(Operand::Attr(TupleRef::T2, resolve_attr(schema, &a)?)),
        Term::Te(a) => Ok(Operand::Target(resolve_attr(schema, &a)?)),
        Term::Tm(a) => Err(ParseError::new(format!(
            "tm[{a}] is only allowed in master rules"
        ))),
        Term::Lit(v) => Ok(Operand::Const(v)),
    }
}

/// Parse one premise of a form-(1) rule.
fn parse_tuple_premise(text: &str, schema: &SchemaRef) -> Result<Predicate, ParseError> {
    let t = text.trim();
    // order premise: "t1 < t2 on attr" or "t1 <= t2 on attr"
    if let Some(on_pos) = t.rfind(" on ") {
        let head = t[..on_pos].trim();
        let attr_name = t[on_pos + 4..].trim();
        let strict = match head {
            "t1 < t2" => Some(true),
            "t1 <= t2" => Some(false),
            _ => None, // fall through to comparison parsing
        };
        if let Some(strict) = strict {
            let attr = resolve_attr(schema, attr_name)?;
            return Ok(if strict {
                Predicate::OrderLt { attr }
            } else {
                Predicate::OrderLe { attr }
            });
        }
    }
    let (left, op, right) = split_comparison(t)?;
    Ok(Predicate::Cmp {
        left: term_to_operand(parse_term(&left)?, schema)?,
        op,
        right: term_to_operand(parse_term(&right)?, schema)?,
    })
}

/// Parse one premise of a form-(2) rule.
fn parse_master_premise(
    text: &str,
    schema: &SchemaRef,
    master: &SchemaRef,
) -> Result<MasterPremise, ParseError> {
    let (left, op, right) = split_comparison(text.trim())?;
    if op != CmpOp::Eq {
        return Err(ParseError::new(format!(
            "master-rule premises only support '=', got {op}"
        )));
    }
    let l = parse_term(&left)?;
    let r = parse_term(&right)?;
    match (l, r) {
        (Term::Te(a), Term::Tm(b)) => Ok(MasterPremise::TargetEqMaster(
            resolve_attr(schema, &a)?,
            resolve_attr(master, &b)?,
        )),
        (Term::Tm(b), Term::Te(a)) => Ok(MasterPremise::TargetEqMaster(
            resolve_attr(schema, &a)?,
            resolve_attr(master, &b)?,
        )),
        (Term::Te(a), Term::Lit(v)) | (Term::Lit(v), Term::Te(a)) => {
            Ok(MasterPremise::TargetEqConst(resolve_attr(schema, &a)?, v))
        }
        (Term::Tm(b), Term::Lit(v)) | (Term::Lit(v), Term::Tm(b)) => {
            Ok(MasterPremise::MasterEqConst(resolve_attr(master, &b)?, v))
        }
        (l, r) => Err(ParseError::new(format!(
            "unsupported master premise operands {l:?} = {r:?}"
        ))),
    }
}

/// Split a string on a separator, ignoring separators inside quotes.
fn split_top_level<'a>(text: &'a str, sep: &str) -> Vec<&'a str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] as char == '"' {
            in_quotes = !in_quotes;
            i += 1;
            continue;
        }
        if !in_quotes && text[i..].starts_with(sep) {
            parts.push(&text[start..i]);
            i += sep.len();
            start = i;
            continue;
        }
        i += 1;
    }
    parts.push(&text[start..]);
    parts
}

/// Parse a single rule line.
///
/// `master_schemas` supplies the schema of every master relation the rule set
/// may reference (`over N` picks the N-th one; the default is 0).
pub fn parse_rule(
    line: &str,
    schema: &SchemaRef,
    master_schemas: &[SchemaRef],
) -> Result<AccuracyRule, ParseError> {
    // optional trailing "@tag"
    let (line, tag) = match split_top_level(line, "@").as_slice() {
        [body] => (body.trim(), None),
        [body, tag] => (body.trim(), Some(tag.trim().to_string())),
        _ => return Err(ParseError::new("at most one '@tag' is allowed")),
    };

    let (header, body) = line
        .split_once(':')
        .ok_or_else(|| ParseError::new("missing ':' after the rule header"))?;
    let header = header.trim();
    let body = body.trim();
    let (lhs, rhs) = match split_top_level(body, "->").as_slice() {
        [l, r] => (l.trim().to_string(), r.trim().to_string()),
        _ => return Err(ParseError::new("rule body must contain exactly one '->'")),
    };

    if let Some(rest) = header.strip_prefix("master rule ") {
        // "master rule NAME" or "master rule NAME over N"
        let (name, master_index) = match rest.split_once(" over ") {
            Some((n, idx)) => (
                n.trim().to_string(),
                idx.trim()
                    .parse::<usize>()
                    .map_err(|_| ParseError::new(format!("bad master index {idx:?}")))?,
            ),
            None => (rest.trim().to_string(), 0usize),
        };
        let master = master_schemas.get(master_index).ok_or_else(|| {
            ParseError::new(format!(
                "rule {name} references master relation {master_index}, but only {} are available",
                master_schemas.len()
            ))
        })?;
        let premises = if lhs.is_empty() {
            Vec::new()
        } else {
            split_top_level(&lhs, "&&")
                .into_iter()
                .map(|p| parse_master_premise(p, schema, master))
                .collect::<Result<Vec<_>, _>>()?
        };
        let mut assignments = Vec::new();
        for part in split_top_level(&rhs, ",") {
            let (l, r) = part.trim().split_once(":=").ok_or_else(|| {
                ParseError::new(format!("assignment must use ':=', got {part:?}"))
            })?;
            let l = parse_term(l)?;
            let r = parse_term(r)?;
            match (l, r) {
                (Term::Te(a), Term::Tm(b)) => {
                    assignments.push((resolve_attr(schema, &a)?, resolve_attr(master, &b)?))
                }
                (l, r) => {
                    return Err(ParseError::new(format!(
                        "assignments must be 'te[A] := tm[B]', got {l:?} := {r:?}"
                    )))
                }
            }
        }
        let mut rule = MasterRule::new(name, premises, assignments).over_master(master_index);
        rule.tag = tag;
        Ok(AccuracyRule::Master(rule))
    } else if let Some(name) = header.strip_prefix("rule ") {
        let premises = if lhs.is_empty() {
            Vec::new()
        } else {
            split_top_level(&lhs, "&&")
                .into_iter()
                .map(|p| parse_tuple_premise(p, schema))
                .collect::<Result<Vec<_>, _>>()?
        };
        // conclusion: "t1 <= t2 on ATTR"
        let attr_name = rhs
            .strip_prefix("t1 <= t2 on ")
            .ok_or_else(|| {
                ParseError::new(format!(
                    "form-(1) conclusion must be 't1 <= t2 on A', got {rhs:?}"
                ))
            })?
            .trim();
        let conclusion = resolve_attr(schema, attr_name)?;
        let mut rule = TupleRule::new(name.trim(), premises, conclusion);
        rule.tag = tag;
        Ok(AccuracyRule::Tuple(rule))
    } else {
        Err(ParseError::new(format!(
            "rule header must start with 'rule' or 'master rule', got {header:?}"
        )))
    }
}

/// Parse a whole rule-set text: one rule per line, `#` comments and blank lines
/// ignored.
pub fn parse_ruleset(
    text: &str,
    schema: &SchemaRef,
    master_schemas: &[SchemaRef],
) -> Result<RuleSet, ParseError> {
    let mut rules = RuleSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = parse_rule(line, schema, master_schemas).map_err(|mut e| {
            e.line = idx + 1;
            e
        })?;
        rules.push(rule);
    }
    Ok(rules)
}

fn format_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("\"{}\"", s.replace('"', "\\\"")),
        other => other.to_string(),
    }
}

fn format_operand(o: &Operand, schema: &SchemaRef) -> String {
    match o {
        Operand::Attr(TupleRef::T1, a) => format!("t1[{}]", schema.attr_name(*a)),
        Operand::Attr(TupleRef::T2, a) => format!("t2[{}]", schema.attr_name(*a)),
        Operand::Target(a) => format!("te[{}]", schema.attr_name(*a)),
        Operand::Const(v) => format_value(v),
    }
}

/// Render a rule back into the textual syntax accepted by [`parse_rule`].
pub fn format_rule(
    rule: &AccuracyRule,
    schema: &SchemaRef,
    master_schemas: &[SchemaRef],
) -> String {
    match rule {
        AccuracyRule::Tuple(r) => {
            let premises: Vec<String> = r
                .premises
                .iter()
                .map(|p| match p {
                    Predicate::Cmp { left, op, right } => format!(
                        "{} {} {}",
                        format_operand(left, schema),
                        op,
                        format_operand(right, schema)
                    ),
                    Predicate::OrderLt { attr } => {
                        format!("t1 < t2 on {}", schema.attr_name(*attr))
                    }
                    Predicate::OrderLe { attr } => {
                        format!("t1 <= t2 on {}", schema.attr_name(*attr))
                    }
                })
                .collect();
            let tag = r
                .tag
                .as_deref()
                .map(|t| format!(" @{t}"))
                .unwrap_or_default();
            format!(
                "rule {}: {} -> t1 <= t2 on {}{}",
                r.name,
                premises.join(" && "),
                schema.attr_name(r.conclusion),
                tag
            )
        }
        AccuracyRule::Master(r) => {
            let master = &master_schemas[r.master_index];
            let premises: Vec<String> = r
                .premises
                .iter()
                .map(|p| match p {
                    MasterPremise::TargetEqConst(a, v) => {
                        format!("te[{}] = {}", schema.attr_name(*a), format_value(v))
                    }
                    MasterPremise::TargetEqMaster(a, b) => format!(
                        "te[{}] = tm[{}]",
                        schema.attr_name(*a),
                        master.attr_name(*b)
                    ),
                    MasterPremise::MasterEqConst(b, v) => {
                        format!("tm[{}] = {}", master.attr_name(*b), format_value(v))
                    }
                })
                .collect();
            let assignments: Vec<String> = r
                .assignments
                .iter()
                .map(|(a, b)| {
                    format!(
                        "te[{}] := tm[{}]",
                        schema.attr_name(*a),
                        master.attr_name(*b)
                    )
                })
                .collect();
            let over = if r.master_index > 0 {
                format!(" over {}", r.master_index)
            } else {
                String::new()
            };
            let tag = r
                .tag
                .as_deref()
                .map(|t| format!(" @{t}"))
                .unwrap_or_default();
            format!(
                "master rule {}{}: {} -> {}{}",
                r.name,
                over,
                premises.join(" && "),
                assignments.join(", "),
                tag
            )
        }
    }
}

/// Render a whole rule set, one rule per line.
pub fn format_ruleset(rules: &RuleSet, schema: &SchemaRef, master_schemas: &[SchemaRef]) -> String {
    rules
        .rules()
        .iter()
        .map(|r| format_rule(r, schema, master_schemas))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_model::{DataType, Schema};

    fn stat_schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("FN", DataType::Text)
            .attr("LN", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("J#", DataType::Int)
            .attr("league", DataType::Text)
            .attr("team", DataType::Text)
            .build()
    }

    fn nba_schema() -> SchemaRef {
        Schema::builder("nba")
            .attr("FN", DataType::Text)
            .attr("LN", DataType::Text)
            .attr("league", DataType::Text)
            .attr("season", DataType::Text)
            .attr("team", DataType::Text)
            .build()
    }

    #[test]
    fn parse_form1_with_comparisons() {
        let s = stat_schema();
        let rule = parse_rule(
            "rule phi1: t1[league] = t2[league] && t1[rnds] < t2[rnds] -> t1 <= t2 on rnds",
            &s,
            &[],
        )
        .unwrap();
        match rule {
            AccuracyRule::Tuple(r) => {
                assert_eq!(r.name, "phi1");
                assert_eq!(r.premises.len(), 2);
                assert_eq!(r.conclusion, s.expect_attr("rnds"));
            }
            _ => panic!("expected a tuple rule"),
        }
    }

    #[test]
    fn parse_form1_with_order_premise_and_tag() {
        let s = stat_schema();
        let rule = parse_rule(
            "rule phi2: t1 < t2 on rnds -> t1 <= t2 on J# @currency",
            &s,
            &[],
        )
        .unwrap();
        match rule {
            AccuracyRule::Tuple(r) => {
                assert_eq!(
                    r.premises,
                    vec![Predicate::OrderLt {
                        attr: s.expect_attr("rnds")
                    }]
                );
                assert_eq!(r.conclusion, s.expect_attr("J#"));
                assert_eq!(r.tag.as_deref(), Some("currency"));
            }
            _ => panic!("expected a tuple rule"),
        }
    }

    #[test]
    fn parse_form2_with_master_constant() {
        let (s, m) = (stat_schema(), nba_schema());
        let rule = parse_rule(
            "master rule phi6: te[FN] = tm[FN] && te[LN] = tm[LN] && tm[season] = \"1994-95\" -> te[league] := tm[league], te[team] := tm[team]",
            &s,
            std::slice::from_ref(&m),
        )
        .unwrap();
        match rule {
            AccuracyRule::Master(r) => {
                assert_eq!(r.premises.len(), 3);
                assert!(matches!(r.premises[2], MasterPremise::MasterEqConst(_, _)));
                assert_eq!(r.assignments.len(), 2);
                assert_eq!(r.master_index, 0);
            }
            _ => panic!("expected a master rule"),
        }
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let s = stat_schema();
        assert!(parse_rule("rule x t1[FN] = t2[FN] -> t1 <= t2 on FN", &s, &[]).is_err());
        assert!(parse_rule("rule x: t1[nope] = t2[FN] -> t1 <= t2 on FN", &s, &[]).is_err());
        assert!(parse_rule("rule x: t1[FN] = t2[FN] -> t2 <= t1 on FN", &s, &[]).is_err());
        assert!(parse_rule("rule x: t1[FN] ~ t2[FN] -> t1 <= t2 on FN", &s, &[]).is_err());
        assert!(parse_rule(
            "master rule m: te[FN] = tm[FN] -> te[FN] := tm[FN]",
            &s,
            &[]
        )
        .is_err());
        assert!(parse_rule("banana x: -> t1 <= t2 on FN", &s, &[]).is_err());
        // unquoted strings are rejected to catch typos
        assert!(parse_rule("rule x: t1[FN] = MJ -> t1 <= t2 on FN", &s, &[]).is_err());
    }

    #[test]
    fn ruleset_parsing_skips_comments_and_reports_lines() {
        let s = stat_schema();
        let text = "# header comment\n\nrule a: t1[rnds] < t2[rnds] -> t1 <= t2 on rnds\nrule b: t1 < t2 on rnds -> t1 <= t2 on J#\n";
        let rs = parse_ruleset(text, &s, &[]).unwrap();
        assert_eq!(rs.len(), 2);

        let bad = "rule a: t1[rnds] < t2[rnds] -> t1 <= t2 on rnds\nrule broken\n";
        let err = parse_ruleset(bad, &s, &[]).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn quoted_literals_with_special_characters() {
        let s = stat_schema();
        let rule = parse_rule(
            "rule q: t1[team] = \"Chicago, \\\"Bulls\\\"\" -> t1 <= t2 on team",
            &s,
            &[],
        )
        .unwrap();
        match rule {
            AccuracyRule::Tuple(r) => match &r.premises[0] {
                Predicate::Cmp {
                    right: Operand::Const(Value::Str(lit)),
                    ..
                } => {
                    assert_eq!(&**lit, "Chicago, \"Bulls\"");
                }
                other => panic!("unexpected premise {other:?}"),
            },
            _ => panic!("expected a tuple rule"),
        }
    }

    #[test]
    fn format_then_parse_round_trips() {
        let (s, m) = (stat_schema(), nba_schema());
        let text = [
            "rule phi1: t1[league] = t2[league] && t1[rnds] < t2[rnds] -> t1 <= t2 on rnds",
            "rule phi2: t1 < t2 on rnds -> t1 <= t2 on J# @currency",
            "rule phi8: t2[FN] = te[FN] && te[FN] != null -> t1 <= t2 on FN",
            "master rule phi6: te[FN] = tm[FN] && tm[season] = \"1994-95\" -> te[league] := tm[league], te[team] := tm[team]",
        ]
        .join("\n");
        let rs = parse_ruleset(&text, &s, std::slice::from_ref(&m)).unwrap();
        let rendered = format_ruleset(&rs, &s, std::slice::from_ref(&m));
        let reparsed = parse_ruleset(&rendered, &s, &[m]).unwrap();
        assert_eq!(rs, reparsed);
        assert_eq!(rendered.lines().count(), 4);
    }
}
