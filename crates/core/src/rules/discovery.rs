//! Rudimentary accuracy-rule discovery.
//!
//! The paper defers AR discovery to future work but sketches the approach
//! (Section 4, Remark): group tuple pairs into classes by their attribute
//! values and analyse containment of those classes level-wise.  This module
//! implements a pragmatic profiler along those lines, usable when a small
//! amount of *training* data is available, i.e. entity instances whose true
//! target tuples are known (e.g. a manually curated sample, or the generators'
//! ground truth):
//!
//! * **currency rules** — for a numeric attribute `A`, if the tuple with the
//!   maximal `A`-value almost always carries the true `A`-value, propose
//!   `t1[A] < t2[A] → t1 ⪯_A t2` (the shape of the paper's ϕ1);
//! * **correlation rules** — for attributes `A ≠ B`, if tuples carrying the
//!   true `A`-value almost always carry the true `B`-value too, propose
//!   `t1 ≺_A t2 → t1 ⪯_B t2` (the shape of ϕ2/ϕ3/ϕ10/ϕ11).
//!
//! Every proposal reports support (how many instances provided evidence) and
//! confidence (fraction of supporting instances where the implication held),
//! and only proposals above the caller's thresholds are returned.

use super::ast::{Predicate, TupleRule};
use relacc_model::{AttrId, CmpOp, DataType, EntityInstance, TargetTuple, Value};

/// A discovered rule candidate with its evidence.
#[derive(Debug, Clone)]
pub struct DiscoveredRule {
    /// The proposed rule.
    pub rule: TupleRule,
    /// Number of training instances that provided evidence.
    pub support: usize,
    /// Fraction of supporting instances consistent with the rule.
    pub confidence: f64,
}

/// Thresholds controlling which candidates are reported.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Minimum number of instances with evidence.
    pub min_support: usize,
    /// Minimum confidence in `[0, 1]`.
    pub min_confidence: f64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            min_support: 3,
            min_confidence: 0.9,
        }
    }
}

/// A training example: an entity instance together with its true target tuple.
pub type TrainingExample<'a> = (&'a EntityInstance, &'a TargetTuple);

fn max_value_of(ie: &EntityInstance, a: AttrId) -> Option<Value> {
    let mut best: Option<Value> = None;
    for (_, t) in ie.iter() {
        let v = t.value(a);
        if v.is_null() {
            continue;
        }
        best = match best {
            None => Some(v.clone()),
            Some(b) => {
                if v.eval(CmpOp::Gt, &b) == Some(true) {
                    Some(v.clone())
                } else {
                    Some(b)
                }
            }
        };
    }
    best
}

/// Propose currency rules `t1[A] < t2[A] → t1 ⪯_A t2` for numeric attributes.
pub fn discover_currency_rules(
    training: &[TrainingExample<'_>],
    config: &DiscoveryConfig,
) -> Vec<DiscoveredRule> {
    let Some((first, _)) = training.first() else {
        return Vec::new();
    };
    let schema = first.schema().clone();
    let mut out = Vec::new();
    for a in schema.attr_ids() {
        if !matches!(schema.attr_type(a), DataType::Int | DataType::Float) {
            continue;
        }
        let mut support = 0usize;
        let mut consistent = 0usize;
        for (ie, truth) in training {
            let true_v = truth.value(a);
            if true_v.is_null() {
                continue;
            }
            // Evidence exists only if the attribute has at least two distinct
            // non-null values in this instance.
            if ie.active_domain(a).len() < 2 {
                continue;
            }
            support += 1;
            if let Some(max_v) = max_value_of(ie, a) {
                if max_v.same(true_v) {
                    consistent += 1;
                }
            }
        }
        if support >= config.min_support {
            let confidence = consistent as f64 / support as f64;
            if confidence >= config.min_confidence {
                out.push(DiscoveredRule {
                    rule: TupleRule::new(
                        format!("mined_currency[{}]", schema.attr_name(a)),
                        vec![Predicate::cmp_attrs(a, CmpOp::Lt)],
                        a,
                    )
                    .with_tag("mined"),
                    support,
                    confidence,
                });
            }
        }
    }
    out
}

/// Propose correlation rules `t1 ≺_A t2 → t1 ⪯_B t2` for attribute pairs.
pub fn discover_correlation_rules(
    training: &[TrainingExample<'_>],
    config: &DiscoveryConfig,
) -> Vec<DiscoveredRule> {
    let Some((first, _)) = training.first() else {
        return Vec::new();
    };
    let schema = first.schema().clone();
    let attrs: Vec<AttrId> = schema.attr_ids().collect();
    let mut out = Vec::new();
    for &a in &attrs {
        for &b in &attrs {
            if a == b {
                continue;
            }
            let mut support = 0usize;
            let mut consistent = 0usize;
            for (ie, truth) in training {
                let (true_a, true_b) = (truth.value(a), truth.value(b));
                if true_a.is_null() || true_b.is_null() {
                    continue;
                }
                // Tuples that are "accurate on A": they carry the true A-value.
                let accurate_on_a: Vec<_> =
                    ie.iter().filter(|(_, t)| t.value(a).same(true_a)).collect();
                let inaccurate_on_a = ie.len() - accurate_on_a.len();
                if accurate_on_a.is_empty() || inaccurate_on_a == 0 {
                    continue;
                }
                support += 1;
                // The implication "more accurate on A ⇒ at least as accurate on
                // B" holds in this instance if every A-accurate tuple is also
                // B-accurate.
                if accurate_on_a.iter().all(|(_, t)| t.value(b).same(true_b)) {
                    consistent += 1;
                }
            }
            if support >= config.min_support {
                let confidence = consistent as f64 / support as f64;
                if confidence >= config.min_confidence {
                    out.push(DiscoveredRule {
                        rule: TupleRule::new(
                            format!(
                                "mined_corr[{}->{}]",
                                schema.attr_name(a),
                                schema.attr_name(b)
                            ),
                            vec![Predicate::OrderLt { attr: a }],
                            b,
                        )
                        .with_tag("mined"),
                        support,
                        confidence,
                    });
                }
            }
        }
    }
    out
}

/// Run both discovery passes and return all proposals sorted by descending
/// confidence (ties broken by support).
pub fn discover_rules(
    training: &[TrainingExample<'_>],
    config: &DiscoveryConfig,
) -> Vec<DiscoveredRule> {
    let mut rules = discover_currency_rules(training, config);
    rules.extend(discover_correlation_rules(training, config));
    rules.sort_by(|x, y| {
        y.confidence
            .total_cmp(&x.confidence)
            .then(y.support.cmp(&x.support))
            .then(x.rule.name.cmp(&y.rule.name))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_model::{EntityInstance, Schema, TargetTuple};

    /// Build training data where `rnds` is monotone-current (max is true) and
    /// `pts` is perfectly correlated with `rnds`, while `noise` is random.
    fn training_data() -> (Vec<EntityInstance>, Vec<TargetTuple>) {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("pts", DataType::Int)
            .attr("noise", DataType::Text)
            .build();
        let mut instances = Vec::new();
        let mut truths = Vec::new();
        for k in 0..5i64 {
            let ie = EntityInstance::from_rows(
                schema.clone(),
                vec![
                    vec![Value::Int(10 + k), Value::Int(100 + k), Value::text("a")],
                    vec![Value::Int(20 + k), Value::Int(200 + k), Value::text("b")],
                    vec![Value::Int(5 + k), Value::Int(50 + k), Value::text("a")],
                ],
            )
            .unwrap();
            instances.push(ie);
            truths.push(TargetTuple::from_values(vec![
                Value::Int(20 + k),
                Value::Int(200 + k),
                Value::text("a"),
            ]));
        }
        (instances, truths)
    }

    #[test]
    fn discovers_currency_and_correlation() {
        let (instances, truths) = training_data();
        let training: Vec<TrainingExample<'_>> = instances.iter().zip(truths.iter()).collect();
        let rules = discover_rules(&training, &DiscoveryConfig::default());
        let names: Vec<&str> = rules.iter().map(|r| r.rule.name.as_str()).collect();
        assert!(names.contains(&"mined_currency[rnds]"));
        assert!(names.contains(&"mined_currency[pts]"));
        assert!(names.contains(&"mined_corr[rnds->pts]"));
        assert!(names.contains(&"mined_corr[pts->rnds]"));
        // the noisy text column must not yield a high-confidence correlation
        assert!(!names.contains(&"mined_corr[rnds->noise]"));
        assert!(rules.iter().all(|r| r.confidence >= 0.9));
        assert!(rules.iter().all(|r| r.support >= 3));
        // sorted by confidence descending
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn thresholds_filter_candidates() {
        let (instances, truths) = training_data();
        let training: Vec<TrainingExample<'_>> = instances.iter().zip(truths.iter()).collect();
        let strict = DiscoveryConfig {
            min_support: 100,
            min_confidence: 0.9,
        };
        assert!(discover_rules(&training, &strict).is_empty());
        let empty: Vec<TrainingExample<'_>> = Vec::new();
        assert!(discover_rules(&empty, &DiscoveryConfig::default()).is_empty());
    }
}
