//! Free-order chase: apply valid chase steps in an arbitrary (seeded) order.
//!
//! The definition of the Church-Rosser property (Section 3) quantifies over
//! *all* chasing sequences: every order of rule application must reach the same
//! terminal instance.  `IsCR` decides this without enumerating sequences; this
//! module provides the brute-force counterpart — pick applicable steps at
//! random until no more valid step exists — which the test-suite uses as an
//! oracle: whenever `IsCR` reports Church-Rosser, every seeded free chase must
//! deduce the same target tuple and the same accuracy orders.
//!
//! Randomness comes from a tiny SplitMix64 generator so the crate keeps zero
//! runtime dependencies; the sequence is fully determined by the seed.

use super::ground::{ground, Grounding};
use super::iscr::{run_chase, ChaseRun, SeededScheduler};
use super::spec::Specification;
use relacc_model::{AccuracyOrders, TargetTuple};

/// A tiny deterministic PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn next_below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Run a free-order chase with the given seed, starting from the
/// specification's initial target.
pub fn free_chase(spec: &Specification, seed: u64) -> ChaseRun {
    let orders = AccuracyOrders::new(&spec.ie);
    let grounding = ground(spec, &orders);
    free_chase_with_grounding(spec, &grounding, &spec.initial_target, seed)
}

/// Free-order chase over a pre-computed grounding.
///
/// Shares the core enforcement loop of `IsCR` (see
/// [`crate::chase::iscr`]); only the step-selection strategy differs.
pub fn free_chase_with_grounding(
    spec: &Specification,
    grounding: &Grounding,
    initial_target: &TargetTuple,
    seed: u64,
) -> ChaseRun {
    let mut scheduler = SeededScheduler::new(seed);
    run_chase(
        &spec.ie,
        &spec.rules,
        grounding,
        initial_target,
        &mut scheduler,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::iscr::is_cr;
    use crate::rules::{Predicate, RuleSet, TupleRule};
    use relacc_model::{AttrId, CmpOp, DataType, EntityInstance, Schema, Value};

    fn spec() -> Specification {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("pts", DataType::Int)
            .attr("name", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![Value::Int(16), Value::Int(424), Value::text("MJ")],
                vec![Value::Int(27), Value::Int(772), Value::text("Michael")],
                vec![Value::Int(1), Value::Int(19), Value::text("MJ")],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([
            TupleRule::new(
                "phi1",
                vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
                schema.expect_attr("rnds"),
            ),
            TupleRule::new(
                "phi3",
                vec![Predicate::OrderLt {
                    attr: schema.expect_attr("rnds"),
                }],
                schema.expect_attr("pts"),
            ),
            TupleRule::new(
                "phi5",
                vec![Predicate::OrderLt {
                    attr: schema.expect_attr("pts"),
                }],
                schema.expect_attr("name"),
            ),
        ]);
        Specification::new(ie, rules)
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(7);
        assert!((0..10).any(|_| c.next_below(5) != a.next_below(5)));
        for _ in 0..100 {
            assert!(c.next_below(3) < 3);
        }
    }

    #[test]
    fn all_orders_agree_when_church_rosser() {
        let s = spec();
        let reference = is_cr(&s);
        assert!(reference.outcome.is_church_rosser());
        let ref_target = reference.outcome.target().unwrap();
        assert_eq!(ref_target.value(AttrId(0)), &Value::Int(27));
        assert_eq!(ref_target.value(AttrId(1)), &Value::Int(772));
        assert_eq!(ref_target.value(AttrId(2)), &Value::text("Michael"));
        for seed in 0..25u64 {
            let run = free_chase(&s, seed);
            assert!(run.outcome.is_church_rosser(), "seed {seed}");
            assert_eq!(run.outcome.target().unwrap(), ref_target, "seed {seed}");
            assert_eq!(
                run.outcome.instance().unwrap().orders.total_edges(),
                reference.outcome.instance().unwrap().orders.total_edges(),
                "seed {seed}"
            );
        }
    }
}
