//! The indexing structure `H` of algorithm `IsCR` (Section 5).
//!
//! For every ground step φ the index keeps the counter `n_φ` of pending
//! predicates that are not yet satisfied, and for every possible *event* — an
//! order pair becoming established, or a target attribute becoming defined —
//! the set `Φ_δ` of steps waiting on it.  The queue `Q` holds the steps whose
//! counter has reached zero; `NextStep` is a pop from that queue.  With this
//! structure the chase never rescans the entity instance: each ground step and
//! each pending predicate is touched a constant number of times.

use super::ground::{GroundStep, PendingPred};
use relacc_model::{AttrId, ClassId, Value};
use std::collections::{HashMap, VecDeque};

/// Book-keeping for one ground step.  `Copy` so the checkpoint/resume layer
/// ([`crate::chase::checkpoint`]) can snapshot and undo-log step states
/// cheaply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct StepState {
    /// Number of pending predicates not yet satisfied (`n_φ`).
    pub(crate) remaining: usize,
    /// The step can never fire (a target predicate evaluated to false).
    pub(crate) dead: bool,
    /// The step has been pushed to `Q` (it is pushed at most once).  At a
    /// chase fixpoint the queue is empty, so `enqueued` then means *fired*.
    pub(crate) enqueued: bool,
}

/// The index `H` plus the ready queue `Q`.
///
/// The index does not own the ground steps: it is built over a borrowed slice
/// so that one grounding can drive many chases (the candidate-target `check`
/// reruns the chase with a different initial target but the same `Γ`).
///
/// [`ChaseIndex::reset`] rebuilds the index over a new step slice while
/// keeping all internal allocations, so a batch run touches the allocator a
/// constant number of times per worker instead of once per entity.
#[derive(Debug, Default)]
pub struct ChaseIndex {
    states: Vec<StepState>,
    /// Steps waiting on an order event `(attr, lo, hi)`.
    by_order: HashMap<(AttrId, ClassId, ClassId), Vec<usize>>,
    /// Steps (and the index of the pending predicate) waiting on `te[attr]`.
    by_target: HashMap<AttrId, Vec<(usize, usize)>>,
    /// The ready queue `Q`.
    ready: VecDeque<usize>,
    dead_steps: usize,
    /// Retired subscriber buckets, recycled by [`ChaseIndex::reset`] so the
    /// per-key `Vec`s are not reallocated for every entity of a batch.
    spare_order: Vec<Vec<usize>>,
    spare_target: Vec<Vec<(usize, usize)>>,
}

impl ChaseIndex {
    /// Build the index for a grounded rule set (`InitIndex` of the paper).
    pub fn new(steps: &[GroundStep]) -> Self {
        let mut index = ChaseIndex::default();
        index.reset(steps);
        index
    }

    /// Rebuild the index over `steps`, reusing the existing allocations
    /// (including the per-key subscriber buckets, which are recycled through
    /// a spare pool).
    pub fn reset(&mut self, steps: &[GroundStep]) {
        self.states.clear();
        self.states.resize(steps.len(), StepState::default());
        for (_, mut bucket) in self.by_order.drain() {
            bucket.clear();
            self.spare_order.push(bucket);
        }
        for (_, mut bucket) in self.by_target.drain() {
            bucket.clear();
            self.spare_target.push(bucket);
        }
        self.ready.clear();
        self.dead_steps = 0;
        let mut spare_order = std::mem::take(&mut self.spare_order);
        let mut spare_target = std::mem::take(&mut self.spare_target);
        for (idx, step) in steps.iter().enumerate() {
            self.states[idx].remaining = step.pending.len();
            for (pidx, pred) in step.pending.iter().enumerate() {
                match pred {
                    PendingPred::Order { attr, lo, hi } => {
                        self.by_order
                            .entry((*attr, *lo, *hi))
                            .or_insert_with(|| spare_order.pop().unwrap_or_default())
                            .push(idx);
                    }
                    PendingPred::TargetCmp { attr, .. } => {
                        self.by_target
                            .entry(*attr)
                            .or_insert_with(|| spare_target.pop().unwrap_or_default())
                            .push((idx, pidx));
                    }
                }
            }
            if step.pending.is_empty() {
                self.states[idx].enqueued = true;
                self.ready.push_back(idx);
            }
        }
        self.spare_order = spare_order;
        self.spare_target = spare_target;
    }

    /// Number of ground steps managed by the index.
    pub fn step_count(&self) -> usize {
        self.states.len()
    }

    /// Number of steps marked dead (unsatisfiable).
    pub fn dead_count(&self) -> usize {
        self.dead_steps
    }

    /// Pop the next ready step (`NextStep` of the paper), skipping steps that
    /// were marked dead after being enqueued.
    pub fn pop_ready(&mut self) -> Option<usize> {
        while let Some(id) = self.ready.pop_front() {
            if !self.states[id].dead {
                return Some(id);
            }
        }
        None
    }

    fn decrement(&mut self, id: usize) {
        let state = &mut self.states[id];
        if state.dead || state.enqueued {
            // Already settled; counters of enqueued steps no longer matter.
            if !state.enqueued {
                state.remaining = state.remaining.saturating_sub(1);
            }
            return;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            state.enqueued = true;
            self.ready.push_back(id);
        }
    }

    /// Notify the index that `lo ⪯ hi` now holds on `attr` (a newly related
    /// class pair reported by the orders).
    pub fn on_order_added(&mut self, attr: AttrId, lo: ClassId, hi: ClassId) {
        if let Some(mut waiting) = self.by_order.remove(&(attr, lo, hi)) {
            for id in waiting.drain(..) {
                self.decrement(id);
            }
            self.spare_order.push(waiting);
        }
    }

    /// Notify the index that `te[attr]` has been instantiated with `value`.
    ///
    /// Waiting target predicates are evaluated: satisfied ones decrement their
    /// step's counter, unsatisfied ones kill the step (the target value can
    /// never change again).  `steps` must be the same slice the index was built
    /// over.
    pub fn on_target_set(&mut self, steps: &[GroundStep], attr: AttrId, value: &Value) {
        if let Some(mut waiting) = self.by_target.remove(&attr) {
            for (id, pidx) in waiting.drain(..) {
                if self.states[id].dead {
                    continue;
                }
                let satisfied = steps[id].pending[pidx].eval_target(value);
                if satisfied {
                    self.decrement(id);
                } else if !self.states[id].enqueued {
                    self.states[id].dead = true;
                    self.dead_steps += 1;
                } else {
                    // The step is already queued: it became applicable before
                    // this predicate could be falsified, so it stays queued (it
                    // had no pending predicate on this attribute left).
                }
            }
            self.spare_target.push(waiting);
        }
    }

    /// The per-step states (checkpoint support: at a fixpoint these record
    /// which steps fired, died, or still wait with `remaining` unsatisfied
    /// predicates).
    pub(crate) fn states(&self) -> &[StepState] {
        &self.states
    }

    /// Steps still subscribed to the order event `lo ⪯ hi` on `attr`.
    ///
    /// After a chase run, only the subscriptions of events that never fired
    /// survive (fired events consume their bucket) — exactly the set a
    /// checkpointed resume may still have to dispatch.
    pub(crate) fn order_subscribers(&self, attr: AttrId, lo: ClassId, hi: ClassId) -> &[usize] {
        self.by_order
            .get(&(attr, lo, hi))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Steps (with the pending-predicate index) still subscribed to
    /// `te[attr]` becoming defined.  See [`ChaseIndex::order_subscribers`].
    pub(crate) fn target_subscribers(&self, attr: AttrId) -> &[(usize, usize)] {
        self.by_target.get(&attr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of steps still waiting (neither ready, applied nor dead).  Used
    /// by tests and by the chase statistics.
    pub fn waiting_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| !s.enqueued && !s.dead)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::ground::{StepAction, StepOrigin};
    use relacc_model::CmpOp;

    fn order_step(attr: usize, lo: usize, hi: usize, pending: Vec<PendingPred>) -> GroundStep {
        GroundStep {
            origin: StepOrigin::Rule(0),
            action: StepAction::Order {
                attr: AttrId(attr),
                lo: ClassId(lo),
                hi: ClassId(hi),
            },
            pending,
        }
    }

    #[test]
    fn ready_queue_starts_with_unconditional_steps() {
        let steps = vec![
            order_step(0, 0, 1, vec![]),
            order_step(
                1,
                0,
                1,
                vec![PendingPred::Order {
                    attr: AttrId(0),
                    lo: ClassId(0),
                    hi: ClassId(1),
                }],
            ),
        ];
        let mut index = ChaseIndex::new(&steps);
        assert_eq!(index.step_count(), 2);
        assert_eq!(index.waiting_count(), 1);
        assert_eq!(index.pop_ready(), Some(0));
        assert_eq!(index.pop_ready(), None);
        index.on_order_added(AttrId(0), ClassId(0), ClassId(1));
        assert_eq!(index.pop_ready(), Some(1));
        assert_eq!(index.pop_ready(), None);
    }

    #[test]
    fn target_events_satisfy_or_kill() {
        let good = GroundStep {
            origin: StepOrigin::Rule(0),
            action: StepAction::Assign {
                assignments: vec![(AttrId(1), Value::Int(1))],
            },
            pending: vec![PendingPred::TargetCmp {
                attr: AttrId(0),
                op: CmpOp::Eq,
                rhs: Value::text("NBA"),
            }],
        };
        let bad = GroundStep {
            origin: StepOrigin::Rule(1),
            action: StepAction::Assign {
                assignments: vec![(AttrId(1), Value::Int(2))],
            },
            pending: vec![PendingPred::TargetCmp {
                attr: AttrId(0),
                op: CmpOp::Eq,
                rhs: Value::text("SL"),
            }],
        };
        let steps = vec![good, bad];
        let mut index = ChaseIndex::new(&steps);
        assert_eq!(index.pop_ready(), None);
        index.on_target_set(&steps, AttrId(0), &Value::text("NBA"));
        assert_eq!(index.dead_count(), 1);
        assert_eq!(index.pop_ready(), Some(0));
        assert_eq!(index.pop_ready(), None);
        assert_eq!(index.waiting_count(), 0);
    }

    #[test]
    fn multiple_pending_predicates_all_required() {
        let step = order_step(
            2,
            0,
            1,
            vec![
                PendingPred::Order {
                    attr: AttrId(0),
                    lo: ClassId(0),
                    hi: ClassId(1),
                },
                PendingPred::TargetCmp {
                    attr: AttrId(1),
                    op: CmpOp::Ne,
                    rhs: Value::Null,
                },
            ],
        );
        let steps = vec![step];
        let mut index = ChaseIndex::new(&steps);
        index.on_order_added(AttrId(0), ClassId(0), ClassId(1));
        assert_eq!(index.pop_ready(), None);
        index.on_target_set(&steps, AttrId(1), &Value::Int(7));
        assert_eq!(index.pop_ready(), Some(0));
    }

    #[test]
    fn duplicate_events_do_not_over_decrement() {
        let step = order_step(
            0,
            2,
            3,
            vec![PendingPred::Order {
                attr: AttrId(0),
                lo: ClassId(0),
                hi: ClassId(1),
            }],
        );
        let steps = vec![step];
        let mut index = ChaseIndex::new(&steps);
        index.on_order_added(AttrId(0), ClassId(0), ClassId(1));
        // a second identical event finds no subscribers (entry consumed)
        index.on_order_added(AttrId(0), ClassId(0), ClassId(1));
        assert_eq!(index.pop_ready(), Some(0));
        assert_eq!(index.pop_ready(), None);
    }
}
