//! Algorithm `IsCR` (Fig. 4 of the paper): decide whether a specification is
//! Church-Rosser and, if so, compute its unique terminal instance.
//!
//! The implementation follows the paper:
//!
//! 1. `Instantiation` (grounding, [`mod@crate::chase::ground`]) turns `Σ` into a
//!    set `Γ` of potential single chase steps;
//! 2. the index `H` ([`crate::chase::index::ChaseIndex`]) tracks, per step, how
//!    many of its premises are still unsatisfied, and queues steps that become
//!    applicable;
//! 3. the main loop pops applicable steps and enforces them on the accuracy
//!    instance.  A popped step that turns out to be *invalid* — it would relate
//!    two classes with different values in both directions, or overwrite an
//!    already-defined target value with a different one — shows there is no
//!    stable terminal chasing sequence, so the specification is **not**
//!    Church-Rosser (Theorem 2) and the algorithm stops with a
//!    [`Conflict`] report.
//!
//! The built-in axioms are enforced structurally: ϕ9 by the value-class
//! representation of the orders, ϕ7 by seeding the null class below every other
//! class of its attribute, and ϕ8 by raising the class of a newly defined
//! target value above every other class of that attribute.
//!
//! All chase variants — the indexed `IsCR`, the index-free [`naive_is_cr`]
//! used by the ablation benchmark, and the seeded free-order chase of
//! [`crate::chase::free`] — share one core loop, `run_chase`, parameterized
//! by a `StepScheduler` that decides which applicable step fires next.

use super::ground::{origin_name, GroundStep, Grounding, PendingPred, StepAction, StepOrigin};
use super::index::ChaseIndex;
use super::spec::{AccuracyInstance, Specification};
use crate::rules::RuleSet;
use relacc_model::{
    AccuracyOrders, AttrId, ClassId, EntityInstance, OrderInsert, TargetTuple, Value,
};
use std::fmt;

/// Counters describing one chase run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// `|Γ|`: number of ground steps produced by Instantiation.
    pub ground_steps: usize,
    /// Ordered tuple pairs examined during grounding.
    pub pairs_considered: usize,
    /// Steps popped from the ready queue (or scanned as applicable).
    pub steps_considered: usize,
    /// Steps that changed the accuracy instance.
    pub steps_applied: usize,
    /// Steps that were applicable but changed nothing.
    pub noop_steps: usize,
    /// Class pairs added to the orders (after transitive closure).
    pub order_pairs_added: usize,
    /// Target attributes instantiated during the chase.
    pub target_assignments: usize,
    /// Candidate checks that re-ran the chase from scratch.
    pub full_checks: usize,
    /// Candidate checks answered by a checkpointed delta replay
    /// ([`crate::chase::checkpoint`]).
    pub delta_checks: usize,
    /// Ground steps replayed across all delta checks (the `O(|affected|)`
    /// work that replaces a full `O(|Γ|)` re-chase per candidate).
    pub delta_steps_replayed: usize,
}

impl ChaseStats {
    /// Accumulate another run's counters (used by batch reports).
    pub fn merge(&mut self, other: &ChaseStats) {
        self.ground_steps += other.ground_steps;
        self.pairs_considered += other.pairs_considered;
        self.steps_considered += other.steps_considered;
        self.steps_applied += other.steps_applied;
        self.noop_steps += other.noop_steps;
        self.order_pairs_added += other.order_pairs_added;
        self.target_assignments += other.target_assignments;
        self.full_checks += other.full_checks;
        self.delta_checks += other.delta_checks;
        self.delta_steps_replayed += other.delta_steps_replayed;
    }
}

/// Why a specification is not Church-Rosser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// Name of the rule (or axiom) whose step was invalid.
    pub rule: String,
    /// The attribute on which the conflict arose.
    pub attr: AttrId,
    /// Human-readable description of the violated validity condition.
    pub detail: String,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {} on {}: {}", self.rule, self.attr, self.detail)
    }
}

/// The verdict of `IsCR`.
#[derive(Debug, Clone)]
pub enum IsCrOutcome {
    /// The specification is Church-Rosser; the unique terminal instance is
    /// attached.
    ChurchRosser(AccuracyInstance),
    /// The specification is not Church-Rosser (the paper's `nil`), with the
    /// conflict that proves it.
    NotChurchRosser(Conflict),
}

impl IsCrOutcome {
    /// True if the specification was found Church-Rosser.
    pub fn is_church_rosser(&self) -> bool {
        matches!(self, IsCrOutcome::ChurchRosser(_))
    }

    /// The terminal instance, if Church-Rosser.
    pub fn instance(&self) -> Option<&AccuracyInstance> {
        match self {
            IsCrOutcome::ChurchRosser(i) => Some(i),
            IsCrOutcome::NotChurchRosser(_) => None,
        }
    }

    /// The deduced target tuple, if Church-Rosser.
    pub fn target(&self) -> Option<&TargetTuple> {
        self.instance().map(|i| &i.target)
    }

    /// The conflict report, if not Church-Rosser.
    pub fn conflict(&self) -> Option<&Conflict> {
        match self {
            IsCrOutcome::ChurchRosser(_) => None,
            IsCrOutcome::NotChurchRosser(c) => Some(c),
        }
    }
}

/// The result of a chase run: verdict plus statistics.
#[derive(Debug, Clone)]
pub struct ChaseRun {
    /// Church-Rosser verdict and terminal instance.
    pub outcome: IsCrOutcome,
    /// Run counters.
    pub stats: ChaseStats,
}

/// Events emitted while enforcing a step; the indexed scheduler feeds them
/// back into the index (the rescanning schedulers ignore them).
pub(crate) enum ChaseEvent {
    Order(AttrId, ClassId, ClassId),
    Target(AttrId, Value),
}

/// The mutable chase state shared by every scheduler.
///
/// A chaser borrows the entity instance and the rule set directly (not a
/// [`Specification`]), so the compile-once pipeline can run chases without
/// materializing a specification per entity.
pub(crate) struct Chaser<'a> {
    ie: &'a EntityInstance,
    rules: &'a RuleSet,
    orders: AccuracyOrders,
    target: TargetTuple,
    pub(crate) stats: ChaseStats,
    events: Vec<ChaseEvent>,
}

impl<'a> Chaser<'a> {
    /// Start from pre-built (still empty) orders — the plan path builds them
    /// once for grounding and hands them over instead of rebuilding.
    pub(crate) fn with_orders(
        ie: &'a EntityInstance,
        rules: &'a RuleSet,
        orders: AccuracyOrders,
        initial_target: &TargetTuple,
    ) -> Self {
        Chaser {
            ie,
            rules,
            orders,
            target: initial_target.clone(),
            stats: ChaseStats::default(),
            events: Vec::new(),
        }
    }

    fn conflict(&self, origin: StepOrigin, attr: AttrId, detail: impl Into<String>) -> Conflict {
        Conflict {
            rule: origin_name(self.rules, origin),
            attr,
            detail: detail.into(),
        }
    }

    /// Seed the axioms and the initial target: ϕ7 edges, plus ϕ8 edges and
    /// target events for every attribute the initial template already defines.
    pub(crate) fn bootstrap(&mut self) -> Result<(), Conflict> {
        if self.rules.axioms.null_lowest {
            for attr in self.ie.schema().attr_ids() {
                let (null_class, others) = {
                    let ord = self.orders.attr(attr);
                    let Some(nc) = ord.null_class() else { continue };
                    let others: Vec<ClassId> = (0..ord.num_classes())
                        .map(ClassId)
                        .filter(|c| *c != nc)
                        .collect();
                    (nc, others)
                };
                for c in others {
                    self.insert_order(StepOrigin::AxiomNullLowest, attr, null_class, c)?;
                }
            }
        }
        for attr in self.ie.schema().attr_ids() {
            if !self.target.is_null(attr) {
                self.announce_target(attr)?;
            }
        }
        // ϕ9's visible effect under the value-class representation: when an
        // attribute's non-null values all fall into one class (and any null
        // class has just been placed below it by ϕ7), that class dominates the
        // attribute, so λ instantiates the target right away — exactly what
        // enforcing ϕ9 on the equal-valued tuple pairs achieves in the paper's
        // tuple-level formulation.
        if self.rules.axioms.equal_values {
            for attr in self.ie.schema().attr_ids() {
                let greatest = self.orders.attr(attr).greatest().map(|(_, v)| v.clone());
                if let Some(v) = greatest {
                    if self.target.is_null(attr) {
                        self.set_target(StepOrigin::AxiomEqualValues, attr, v)?;
                    } else if !self.target.value(attr).same(&v) {
                        return Err(self.conflict(
                            StepOrigin::AxiomEqualValues,
                            attr,
                            format!(
                                "the single observed value {v} disagrees with the initial \
                                 target value {}",
                                self.target.value(attr)
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Enforce `lo ⪯ hi` on `attr`, maintaining λ (the target update of a
    /// single chase step) and the ϕ8 axiom.
    fn insert_order(
        &mut self,
        origin: StepOrigin,
        attr: AttrId,
        lo: ClassId,
        hi: ClassId,
    ) -> Result<bool, Conflict> {
        match self.orders.attr_mut(attr).insert_class_le(lo, hi) {
            OrderInsert::Conflict => Err(self.conflict(
                origin,
                attr,
                format!(
                    "inserting {lo} ⪯ {hi} would relate two different values in both directions"
                ),
            )),
            OrderInsert::NoChange => Ok(false),
            OrderInsert::Added(pairs) => {
                self.stats.order_pairs_added += pairs.len();
                for (a, b) in &pairs {
                    self.events.push(ChaseEvent::Order(attr, *a, *b));
                }
                // λ: if a greatest value emerged, instantiate the target.
                let greatest = self.orders.attr(attr).greatest().map(|(_, v)| v.clone());
                if let Some(v) = greatest {
                    if self.target.is_null(attr) {
                        self.set_target(origin, attr, v)?;
                    } else if !self.target.value(attr).same(&v) {
                        return Err(self.conflict(
                            origin,
                            attr,
                            format!(
                                "the most accurate value {v} disagrees with the already \
                                 deduced target value {}",
                                self.target.value(attr)
                            ),
                        ));
                    }
                }
                Ok(true)
            }
        }
    }

    /// Instantiate `te[attr] := value` (validity condition (b): a non-null
    /// target value may never change).
    fn set_target(
        &mut self,
        origin: StepOrigin,
        attr: AttrId,
        value: Value,
    ) -> Result<bool, Conflict> {
        if self.target.is_null(attr) {
            self.target.set(attr, value);
            self.stats.target_assignments += 1;
            self.announce_target(attr)?;
            Ok(true)
        } else if self.target.value(attr).same(&value) {
            Ok(false)
        } else {
            Err(self.conflict(
                origin,
                attr,
                format!(
                    "assignment {value} conflicts with the already deduced target value {}",
                    self.target.value(attr)
                ),
            ))
        }
    }

    /// Emit the target event for `attr` and enforce the ϕ8 axiom: the class of
    /// the target value dominates every other class of the attribute.
    fn announce_target(&mut self, attr: AttrId) -> Result<(), Conflict> {
        let value = self.target.value(attr).clone();
        self.events.push(ChaseEvent::Target(attr, value.clone()));
        if self.rules.axioms.target_highest {
            let (target_class, others) = {
                let ord = self.orders.attr(attr);
                match ord.class_of_value(&value) {
                    Some(tc) => {
                        let others: Vec<ClassId> = (0..ord.num_classes())
                            .map(ClassId)
                            .filter(|c| *c != tc)
                            .collect();
                        (tc, others)
                    }
                    None => return Ok(()),
                }
            };
            for c in others {
                self.insert_order(StepOrigin::AxiomTargetHighest, attr, c, target_class)?;
            }
        }
        Ok(())
    }

    /// Enforce one ground step; returns whether it changed the instance.
    pub(crate) fn apply(
        &mut self,
        origin: StepOrigin,
        action: &StepAction,
    ) -> Result<bool, Conflict> {
        match action {
            StepAction::Order { attr, lo, hi } => self.insert_order(origin, *attr, *lo, *hi),
            StepAction::Assign { assignments } => {
                let mut changed = false;
                for (attr, value) in assignments {
                    changed |= self.set_target(origin, *attr, value.clone())?;
                }
                Ok(changed)
            }
        }
    }

    pub(crate) fn take_events(&mut self) -> Vec<ChaseEvent> {
        std::mem::take(&mut self.events)
    }

    fn discard_events(&mut self) {
        self.events.clear();
    }

    /// Current orders (used by the rescanning schedulers to evaluate premises).
    pub(crate) fn orders(&self) -> &AccuracyOrders {
        &self.orders
    }

    /// Current target template.
    pub(crate) fn target(&self) -> &TargetTuple {
        &self.target
    }

    pub(crate) fn finish(self, outcome_is_cr: bool, conflict: Option<Conflict>) -> ChaseRun {
        let stats = self.stats;
        let outcome = if outcome_is_cr {
            IsCrOutcome::ChurchRosser(AccuracyInstance {
                orders: self.orders,
                target: self.target,
            })
        } else {
            IsCrOutcome::NotChurchRosser(conflict.expect("conflict present when not CR"))
        };
        ChaseRun { outcome, stats }
    }
}

/// Strategy choosing which applicable ground step fires next.
///
/// This is the only difference between the indexed `IsCR` chase, the naive
/// rescanning chase and the seeded free-order chase; the enforcement loop,
/// validity checks and statistics are shared by [`run_chase`].
pub(crate) trait StepScheduler {
    /// Called once after the axioms were bootstrapped, before the first step.
    fn begin(&mut self, chaser: &mut Chaser<'_>, steps: &[GroundStep]);
    /// Produce the next step to enforce, or `None` when no applicable,
    /// unfired step remains.
    fn next_step(&mut self, chaser: &mut Chaser<'_>, steps: &[GroundStep]) -> Option<usize>;
}

/// The shared chase loop: bootstrap the axioms, then repeatedly enforce the
/// scheduler's next step until none remains or a step turns out invalid.
pub(crate) fn run_chase<S: StepScheduler>(
    ie: &EntityInstance,
    rules: &RuleSet,
    grounding: &Grounding,
    initial_target: &TargetTuple,
    scheduler: &mut S,
) -> ChaseRun {
    run_chase_with_orders(
        ie,
        rules,
        AccuracyOrders::new(ie),
        grounding,
        initial_target,
        scheduler,
    )
}

/// [`run_chase`] over pre-built (still empty) accuracy orders.
pub(crate) fn run_chase_with_orders<S: StepScheduler>(
    ie: &EntityInstance,
    rules: &RuleSet,
    orders: AccuracyOrders,
    grounding: &Grounding,
    initial_target: &TargetTuple,
    scheduler: &mut S,
) -> ChaseRun {
    let mut chaser = Chaser::with_orders(ie, rules, orders, initial_target);
    chaser.stats.ground_steps = grounding.steps.len();
    chaser.stats.pairs_considered = grounding.pairs_considered;
    if let Err(conflict) = chaser.bootstrap() {
        return chaser.finish(false, Some(conflict));
    }
    scheduler.begin(&mut chaser, &grounding.steps);
    while let Some(id) = scheduler.next_step(&mut chaser, &grounding.steps) {
        chaser.stats.steps_considered += 1;
        let step = &grounding.steps[id];
        match chaser.apply(step.origin, &step.action) {
            Ok(true) => chaser.stats.steps_applied += 1,
            Ok(false) => chaser.stats.noop_steps += 1,
            Err(conflict) => return chaser.finish(false, Some(conflict)),
        }
    }
    chaser.finish(true, None)
}

/// The event-driven scheduler of algorithm `IsCR`: O(1) work per event via the
/// index `H`.  Borrows the index so a batch can reuse its allocations across
/// entities (see [`crate::chase::ChaseScratch`]).
pub(crate) struct IndexedScheduler<'i> {
    pub(crate) index: &'i mut ChaseIndex,
}

impl IndexedScheduler<'_> {
    fn drain(&mut self, chaser: &mut Chaser<'_>, steps: &[GroundStep]) {
        for event in chaser.take_events() {
            match event {
                ChaseEvent::Order(attr, lo, hi) => self.index.on_order_added(attr, lo, hi),
                ChaseEvent::Target(attr, value) => self.index.on_target_set(steps, attr, &value),
            }
        }
    }
}

impl StepScheduler for IndexedScheduler<'_> {
    fn begin(&mut self, chaser: &mut Chaser<'_>, steps: &[GroundStep]) {
        self.index.reset(steps);
        self.drain(chaser, steps);
    }

    fn next_step(&mut self, chaser: &mut Chaser<'_>, steps: &[GroundStep]) -> Option<usize> {
        self.drain(chaser, steps);
        self.index.pop_ready()
    }
}

/// The naive scheduler: rescan `Γ` (wrapping around) for the next applicable
/// unfired step.  Quadratically slower than the index; kept for the ablation
/// benchmark and as an oracle in tests.
struct RescanScheduler {
    fired: Vec<bool>,
    cursor: usize,
}

impl StepScheduler for RescanScheduler {
    fn begin(&mut self, chaser: &mut Chaser<'_>, steps: &[GroundStep]) {
        chaser.discard_events();
        self.fired = vec![false; steps.len()];
        self.cursor = 0;
    }

    fn next_step(&mut self, chaser: &mut Chaser<'_>, steps: &[GroundStep]) -> Option<usize> {
        chaser.discard_events();
        let n = steps.len();
        for offset in 0..n {
            let id = (self.cursor + offset) % n;
            if self.fired[id] {
                continue;
            }
            if steps[id]
                .pending
                .iter()
                .all(|p| pending_satisfied(p, chaser.orders(), chaser.target()))
            {
                self.fired[id] = true;
                self.cursor = id + 1;
                return Some(id);
            }
        }
        None
    }
}

/// The seeded free-order scheduler: pick uniformly among all currently
/// applicable unfired steps.  Used by [`crate::chase::free_chase`] as the
/// brute-force Church-Rosser oracle.
pub(crate) struct SeededScheduler {
    pub(crate) rng: super::free::SplitMix64,
    fired: Vec<bool>,
}

impl SeededScheduler {
    pub(crate) fn new(seed: u64) -> Self {
        SeededScheduler {
            rng: super::free::SplitMix64::new(seed),
            fired: Vec::new(),
        }
    }
}

impl StepScheduler for SeededScheduler {
    fn begin(&mut self, chaser: &mut Chaser<'_>, steps: &[GroundStep]) {
        chaser.discard_events();
        self.fired = vec![false; steps.len()];
    }

    fn next_step(&mut self, chaser: &mut Chaser<'_>, steps: &[GroundStep]) -> Option<usize> {
        chaser.discard_events();
        let applicable: Vec<usize> = steps
            .iter()
            .enumerate()
            .filter(|(id, step)| {
                !self.fired[*id]
                    && step
                        .pending
                        .iter()
                        .all(|p| pending_satisfied(p, chaser.orders(), chaser.target()))
            })
            .map(|(id, _)| id)
            .collect();
        if applicable.is_empty() {
            return None;
        }
        let pick = applicable[self.rng.next_below(applicable.len())];
        self.fired[pick] = true;
        Some(pick)
    }
}

/// Run `IsCR` on a specification: ground it and chase with the index.
pub fn is_cr(spec: &Specification) -> ChaseRun {
    let orders = AccuracyOrders::new(&spec.ie);
    let grounding = super::ground::ground(spec, &orders);
    chase_with_grounding(spec, &grounding, &spec.initial_target)
}

/// Convenience: the deduced target tuple of a Church-Rosser specification.
pub fn deduced_target(spec: &Specification) -> Option<TargetTuple> {
    match is_cr(spec).outcome {
        IsCrOutcome::ChurchRosser(instance) => Some(instance.target),
        IsCrOutcome::NotChurchRosser(_) => None,
    }
}

/// Run the chase over a pre-computed grounding with an explicit initial target
/// template.
///
/// This is the entry point used by the candidate-target `check` of the top-k
/// algorithms: `Γ` does not depend on the initial target, so it is grounded
/// once and reused for every candidate.
pub fn chase_with_grounding(
    spec: &Specification,
    grounding: &Grounding,
    initial_target: &TargetTuple,
) -> ChaseRun {
    chase_parts(&spec.ie, &spec.rules, None, grounding, initial_target, None)
}

/// The specification-free chase used by [`crate::chase::ChasePlan`]: entity
/// instance and rules are borrowed directly, an optional pre-allocated index
/// is reused instead of building a fresh one, and pre-built (empty) orders
/// can be handed over instead of being rebuilt.
pub(crate) fn chase_parts(
    ie: &EntityInstance,
    rules: &RuleSet,
    orders: Option<AccuracyOrders>,
    grounding: &Grounding,
    initial_target: &TargetTuple,
    index: Option<&mut ChaseIndex>,
) -> ChaseRun {
    let orders = orders.unwrap_or_else(|| AccuracyOrders::new(ie));
    match index {
        Some(index) => {
            let mut scheduler = IndexedScheduler { index };
            run_chase_with_orders(ie, rules, orders, grounding, initial_target, &mut scheduler)
        }
        None => {
            let mut fresh = ChaseIndex::default();
            let mut scheduler = IndexedScheduler { index: &mut fresh };
            run_chase_with_orders(ie, rules, orders, grounding, initial_target, &mut scheduler)
        }
    }
}

/// `IsCR` without the index: repeatedly rescan `Γ`, applying every applicable
/// step, until a full pass changes nothing.  Semantically equivalent to
/// [`is_cr`]; quadratically slower.  Used by the ablation benchmark
/// (`bench/benches/ablation_index.rs`) and as a cross-check in tests.
pub fn naive_is_cr(spec: &Specification) -> ChaseRun {
    let orders = AccuracyOrders::new(&spec.ie);
    let grounding = super::ground::ground(spec, &orders);
    naive_chase_with_grounding(spec, &grounding, &spec.initial_target)
}

/// The naive scheduler over a pre-computed grounding.
pub fn naive_chase_with_grounding(
    spec: &Specification,
    grounding: &Grounding,
    initial_target: &TargetTuple,
) -> ChaseRun {
    let mut scheduler = RescanScheduler {
        fired: Vec::new(),
        cursor: 0,
    };
    run_chase(
        &spec.ie,
        &spec.rules,
        grounding,
        initial_target,
        &mut scheduler,
    )
}

/// Evaluate a pending predicate against the current accuracy instance (used by
/// the rescanning schedulers, which have no event index).
pub(crate) fn pending_satisfied(
    pred: &PendingPred,
    orders: &AccuracyOrders,
    target: &TargetTuple,
) -> bool {
    match pred {
        PendingPred::Order { attr, lo, hi } => orders.attr(*attr).class_le(*lo, *hi),
        PendingPred::TargetCmp { attr, op, rhs } => {
            let v = target.value(*attr);
            !v.is_null() && v.eval(*op, rhs).unwrap_or(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::ground::ground;
    use crate::rules::{MasterPremise, MasterRule, Predicate, RuleSet, TupleRule};
    use relacc_model::{CmpOp, DataType, EntityInstance, MasterRelation, Schema, TupleId};

    /// A small two-attribute instance: `rnds` is numeric with distinct values,
    /// `flag` is text with a null.
    fn simple_spec(rules: RuleSet) -> Specification {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("flag", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema,
            vec![
                vec![Value::Int(16), Value::Null],
                vec![Value::Int(27), Value::text("x")],
                vec![Value::Int(1), Value::text("y")],
            ],
        )
        .unwrap();
        Specification::new(ie, rules)
    }

    fn currency_rule(spec_schema: &relacc_model::SchemaRef) -> TupleRule {
        TupleRule::new(
            "phi1",
            vec![Predicate::cmp_attrs(
                spec_schema.expect_attr("rnds"),
                CmpOp::Lt,
            )],
            spec_schema.expect_attr("rnds"),
        )
    }

    #[test]
    fn currency_rule_deduces_max_value() {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("flag", DataType::Text)
            .build();
        let rules = RuleSet::from_rules([currency_rule(&schema)]);
        let spec = simple_spec(rules);
        let run = is_cr(&spec);
        assert!(run.outcome.is_church_rosser());
        let te = run.outcome.target().unwrap();
        assert_eq!(te.value(AttrId(0)), &Value::Int(27));
        // flag cannot be fully resolved: x and y are incomparable
        assert!(te.is_null(AttrId(1)));
        assert!(run.stats.steps_applied > 0);
        assert!(run.stats.ground_steps > 0);
    }

    #[test]
    fn phi7_axiom_orders_null_below_everything() {
        // No explicit rules at all: the null flag value must still end up below
        // x and y, but x vs y stays undecided, so te[flag] remains null.
        let spec = simple_spec(RuleSet::new());
        let run = is_cr(&spec);
        assert!(run.outcome.is_church_rosser());
        let instance = run.outcome.instance().unwrap();
        let flag = AttrId(1);
        let ord = instance.orders.attr(flag);
        let nc = ord.null_class().unwrap();
        assert!(ord.holds_lt(TupleId(0), TupleId(1)));
        assert!(ord.holds_lt(TupleId(0), TupleId(2)));
        assert_eq!(ord.class_of(TupleId(0)), nc);
        assert!(instance.target.is_null(flag));
    }

    #[test]
    fn phi8_axiom_raises_assigned_target_value() {
        // A master rule assigns flag = "x"; ϕ8 must then order y ⪯ x and the
        // instance becomes complete.
        let master_schema = Schema::builder("m").attr("flag", DataType::Text).build();
        let im = MasterRelation::from_rows(master_schema, vec![vec![Value::text("x")]]).unwrap();
        let rules = RuleSet::from_rules([AccuracyRuleHelper::master(
            "m1",
            vec![],
            vec![(AttrId(1), AttrId(0))],
        )]);
        let spec = simple_spec(rules).with_master(im);
        let run = is_cr(&spec);
        assert!(run.outcome.is_church_rosser());
        let instance = run.outcome.instance().unwrap();
        assert_eq!(instance.target.value(AttrId(1)), &Value::text("x"));
        let ord = instance.orders.attr(AttrId(1));
        assert!(ord.holds_lt(TupleId(2), TupleId(1))); // y ≺ x
    }

    // small helper so the test above reads naturally
    struct AccuracyRuleHelper;
    impl AccuracyRuleHelper {
        fn master(
            name: &str,
            premises: Vec<MasterPremise>,
            assignments: Vec<(AttrId, AttrId)>,
        ) -> MasterRule {
            MasterRule::new(name, premises, assignments)
        }
    }

    #[test]
    fn conflicting_master_assignments_are_not_church_rosser() {
        let master_schema = Schema::builder("m").attr("flag", DataType::Text).build();
        let im = MasterRelation::from_rows(
            master_schema,
            vec![vec![Value::text("x")], vec![Value::text("y")]],
        )
        .unwrap();
        let rules =
            RuleSet::from_rules([MasterRule::new("m1", vec![], vec![(AttrId(1), AttrId(0))])]);
        let spec = simple_spec(rules).with_master(im);
        let run = is_cr(&spec);
        assert!(!run.outcome.is_church_rosser());
        let conflict = run.outcome.conflict().unwrap();
        assert_eq!(conflict.attr, AttrId(1));
        assert_eq!(conflict.rule, "m1");
        assert!(run.outcome.target().is_none());
        assert!(!conflict.to_string().is_empty());
    }

    #[test]
    fn conflicting_order_rules_are_not_church_rosser() {
        // Example 6 in miniature: one rule orders by ascending rnds, another by
        // descending rnds — the two chase directions disagree.
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("flag", DataType::Text)
            .build();
        let up = TupleRule::new(
            "up",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        );
        let down = TupleRule::new(
            "down",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Gt)],
            schema.expect_attr("rnds"),
        );
        let spec = simple_spec(RuleSet::from_rules([up, down]));
        let run = is_cr(&spec);
        assert!(!run.outcome.is_church_rosser());
    }

    #[test]
    fn candidate_check_rejects_targets_contradicting_master_data() {
        let master_schema = Schema::builder("m").attr("flag", DataType::Text).build();
        let im = MasterRelation::from_rows(master_schema, vec![vec![Value::text("x")]]).unwrap();
        let rules =
            RuleSet::from_rules([MasterRule::new("m1", vec![], vec![(AttrId(1), AttrId(0))])]);
        let spec = simple_spec(rules).with_master(im);
        // candidate saying flag = "y" contradicts the master assignment
        let bad = TargetTuple::from_values(vec![Value::Int(27), Value::text("y")]);
        let orders = AccuracyOrders::new(&spec.ie);
        let grounding = ground(&spec, &orders);
        let run = chase_with_grounding(&spec, &grounding, &bad);
        assert!(!run.outcome.is_church_rosser());
        // the agreeing candidate is accepted
        let good = TargetTuple::from_values(vec![Value::Int(27), Value::text("x")]);
        let run = chase_with_grounding(&spec, &grounding, &good);
        assert!(run.outcome.is_church_rosser());
        assert_eq!(run.outcome.target().unwrap(), &good);
    }

    #[test]
    fn naive_chase_agrees_with_indexed_chase() {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("flag", DataType::Text)
            .build();
        let currency = currency_rule(&schema);
        let correlated = TupleRule::new(
            "phi2",
            vec![Predicate::OrderLt {
                attr: schema.expect_attr("rnds"),
            }],
            schema.expect_attr("flag"),
        );
        // No nulls in `flag` here: a correlated rule promoting a null-valued
        // tuple above a non-null one would (correctly) conflict with ϕ7.
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![Value::Int(16), Value::text("mj")],
                vec![Value::Int(27), Value::text("x")],
                vec![Value::Int(1), Value::text("mj")],
            ],
        )
        .unwrap();
        let spec = Specification::new(ie, RuleSet::from_rules([currency, correlated]));
        let fast = is_cr(&spec);
        let slow = naive_is_cr(&spec);
        assert!(fast.outcome.is_church_rosser());
        assert!(slow.outcome.is_church_rosser());
        assert_eq!(
            fast.outcome.target().unwrap(),
            slow.outcome.target().unwrap()
        );
        assert_eq!(
            fast.outcome.instance().unwrap().orders.total_edges(),
            slow.outcome.instance().unwrap().orders.total_edges()
        );
        // the correlated rule propagates the rnds winner to flag
        assert_eq!(
            fast.outcome.target().unwrap().value(AttrId(1)),
            &Value::text("x")
        );
    }

    #[test]
    fn deduced_target_helper() {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("flag", DataType::Text)
            .build();
        let spec = simple_spec(RuleSet::from_rules([currency_rule(&schema)]));
        let te = deduced_target(&spec).unwrap();
        assert_eq!(te.value(AttrId(0)), &Value::Int(27));
    }

    #[test]
    fn chase_terminates_within_quadratic_steps() {
        // Proposition 1: the number of enforced steps is O(|Ie|^2) per attribute.
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("flag", DataType::Text)
            .build();
        let spec = simple_spec(RuleSet::from_rules([currency_rule(&schema)]));
        let run = is_cr(&spec);
        let n = spec.entity_size();
        let arity = spec.ie.schema().arity();
        assert!(run.stats.order_pairs_added <= n * n * arity);
        assert!(run.stats.steps_applied <= run.stats.steps_considered);
    }

    #[test]
    fn stats_merge_accumulates_all_counters() {
        let a = ChaseStats {
            ground_steps: 1,
            pairs_considered: 2,
            steps_considered: 3,
            steps_applied: 4,
            noop_steps: 5,
            order_pairs_added: 6,
            target_assignments: 7,
            full_checks: 8,
            delta_checks: 9,
            delta_steps_replayed: 10,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.ground_steps, 2);
        assert_eq!(b.pairs_considered, 4);
        assert_eq!(b.steps_considered, 6);
        assert_eq!(b.steps_applied, 8);
        assert_eq!(b.noop_steps, 10);
        assert_eq!(b.order_pairs_added, 12);
        assert_eq!(b.target_assignments, 14);
        assert_eq!(b.full_checks, 16);
        assert_eq!(b.delta_checks, 18);
        assert_eq!(b.delta_steps_replayed, 20);
    }
}
