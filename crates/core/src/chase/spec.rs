//! Specifications and accuracy instances.
//!
//! A *specification* `S = (D0, Σ, Im, t_e^{D0})` (Section 2.2) bundles the
//! entity instance, the master data, the accuracy rules and the initial target
//! template.  An *accuracy instance* `(D, t_e^D)` is what the chase transforms:
//! the per-attribute accuracy orders plus the (partially instantiated) target
//! tuple.

use crate::rules::RuleSet;
use relacc_model::{AccuracyOrders, AttrId, EntityInstance, MasterRelation, TargetTuple, Value};
use std::fmt;
use std::sync::Arc;

/// A specification of an entity: `S = (D0, Σ, Im, t_e^{D0})`.
///
/// `D0` is the entity instance with empty orders; `Im` generalizes to a list of
/// master relations (curated reference data, CFD pattern tableaux, ...), each
/// addressed by form-(2) rules through their `master_index`.
///
/// Rules and master data are reference-counted: every per-entity specification
/// of a batch shares one `Σ` and one `Im` instead of cloning them, which is
/// what makes [`crate::chase::ChasePlan::specification`] cheap enough to call
/// once per entity of a large corpus.
#[derive(Debug, Clone)]
pub struct Specification {
    /// The entity instance `Ie`.
    pub ie: EntityInstance,
    /// The master relations available to form-(2) rules (shared).
    pub masters: Arc<Vec<MasterRelation>>,
    /// The accuracy rules `Σ` plus axiom configuration (shared).
    pub rules: Arc<RuleSet>,
    /// The initial target template `t_e^{D0}` — all null for ordinary
    /// deduction, a complete tuple when verifying a candidate target.
    pub initial_target: TargetTuple,
}

impl Specification {
    /// A specification with no master data and the all-null initial target.
    pub fn new(ie: EntityInstance, rules: impl Into<Arc<RuleSet>>) -> Self {
        let arity = ie.schema().arity();
        Specification {
            ie,
            masters: Arc::new(Vec::new()),
            rules: rules.into(),
            initial_target: TargetTuple::empty(arity),
        }
    }

    /// A specification sharing already-compiled rules and master data (the
    /// per-entity constructor of the compile-once pipeline).
    pub fn shared(
        ie: EntityInstance,
        rules: Arc<RuleSet>,
        masters: Arc<Vec<MasterRelation>>,
    ) -> Self {
        let arity = ie.schema().arity();
        Specification {
            ie,
            masters,
            rules,
            initial_target: TargetTuple::empty(arity),
        }
    }

    /// Add a master relation (builder style); returns its index for rules.
    pub fn with_master(mut self, im: MasterRelation) -> Self {
        Arc::make_mut(&mut self.masters).push(im);
        self
    }

    /// Replace the initial target template (builder style).  Used by the
    /// candidate-target `check` of Section 6.1, which runs the chase with a
    /// complete tuple as the initial template.
    pub fn with_initial_target(mut self, te: TargetTuple) -> Self {
        self.initial_target = te;
        self
    }

    /// `|Ie|` — the number of tuples in the entity instance.
    pub fn entity_size(&self) -> usize {
        self.ie.len()
    }

    /// `|Im|` — the total number of master tuples across all master relations.
    pub fn master_size(&self) -> usize {
        self.masters.iter().map(MasterRelation::len).sum()
    }

    /// `|Σ|` — the number of explicit rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Validate the rules against the schemas and the initial target's arity.
    pub fn validate(&self) -> Result<(), SpecificationError> {
        if self.initial_target.arity() != self.ie.schema().arity() {
            return Err(SpecificationError::TargetArity {
                expected: self.ie.schema().arity(),
                got: self.initial_target.arity(),
            });
        }
        let master_arities: Vec<usize> = self.masters.iter().map(|m| m.schema().arity()).collect();
        self.rules
            .validate(self.ie.schema(), &master_arities)
            .map_err(SpecificationError::Rule)
    }

    /// The candidate-value domain of attribute `a`: the distinct non-null
    /// values appearing in `Ie`'s column `a`, plus the values of any master
    /// column *with the same attribute name* (Section 6.1's "active domain"
    /// drawing from `Ie` or `Im`).
    pub fn candidate_domain(&self, a: AttrId) -> Vec<Value> {
        let mut values = self.ie.active_domain(a);
        let name = self.ie.schema().attr_name(a);
        for master in self.masters.iter() {
            if let Some(b) = master.schema().attr_id(name) {
                for v in master.active_domain(b) {
                    if !values.iter().any(|x| x.same(&v)) {
                        values.push(v);
                    }
                }
            }
        }
        values
    }
}

/// An accuracy instance `(D, t_e^D)`: the orders plus the target template.
#[derive(Debug, Clone)]
pub struct AccuracyInstance {
    /// The per-attribute accuracy orders `⪯_{A_1}, ..., ⪯_{A_n}`.
    pub orders: AccuracyOrders,
    /// The target tuple template associated with `D`.
    pub target: TargetTuple,
}

impl AccuracyInstance {
    /// The initial instance `(D0, t_e^{D0})` of a specification.
    pub fn initial(spec: &Specification) -> Self {
        AccuracyInstance {
            orders: AccuracyOrders::new(&spec.ie),
            target: spec.initial_target.clone(),
        }
    }

    /// Fraction of target attributes that are instantiated (used by Exp-1's
    /// "percentage of attributes with deduced accurate values").
    pub fn filled_fraction(&self) -> f64 {
        if self.target.arity() == 0 {
            return 1.0;
        }
        self.target.filled_count() as f64 / self.target.arity() as f64
    }
}

/// Errors detected by [`Specification::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecificationError {
    /// The initial target template has the wrong arity.
    TargetArity {
        /// Schema arity.
        expected: usize,
        /// Template arity.
        got: usize,
    },
    /// A rule failed validation.
    Rule(crate::rules::RuleValidationError),
}

impl fmt::Display for SpecificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecificationError::TargetArity { expected, got } => {
                write!(f, "initial target has arity {got}, schema has {expected}")
            }
            SpecificationError::Rule(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpecificationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{MasterPremise, MasterRule, RuleSet, TupleRule};
    use relacc_model::{DataType, Schema};

    fn spec() -> Specification {
        let schema = Schema::builder("r")
            .attr("a", DataType::Int)
            .attr("team", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::text("x")],
                vec![Value::Int(2), Value::Null],
            ],
        )
        .unwrap();
        let master_schema = Schema::builder("m")
            .attr("team", DataType::Text)
            .attr("city", DataType::Text)
            .build();
        let im = MasterRelation::from_rows(
            master_schema,
            vec![vec![Value::text("y"), Value::text("c")]],
        )
        .unwrap();
        let mut rules = RuleSet::new();
        rules.push(TupleRule::new("r1", vec![], AttrId(0)));
        rules.push(MasterRule::new(
            "m1",
            vec![MasterPremise::TargetEqMaster(AttrId(1), AttrId(0))],
            vec![(AttrId(1), AttrId(0))],
        ));
        Specification::new(ie, rules).with_master(im)
    }

    #[test]
    fn sizes_and_validation() {
        let s = spec();
        assert_eq!(s.entity_size(), 2);
        assert_eq!(s.master_size(), 1);
        assert_eq!(s.rule_count(), 2);
        assert!(s.validate().is_ok());

        let bad = s.clone().with_initial_target(TargetTuple::empty(5));
        assert!(matches!(
            bad.validate(),
            Err(SpecificationError::TargetArity { .. })
        ));
    }

    #[test]
    fn candidate_domain_merges_master_by_name() {
        let s = spec();
        let team = AttrId(1);
        let domain = s.candidate_domain(team);
        assert!(domain.iter().any(|v| v.same(&Value::text("x"))));
        assert!(domain.iter().any(|v| v.same(&Value::text("y"))));
        assert_eq!(domain.len(), 2);
        // the int column only draws from Ie (master has no attribute "a")
        assert_eq!(s.candidate_domain(AttrId(0)).len(), 2);
    }

    #[test]
    fn initial_instance_is_empty() {
        let s = spec();
        let inst = AccuracyInstance::initial(&s);
        assert_eq!(inst.orders.total_edges(), 0);
        assert!(!inst.target.is_complete());
        assert_eq!(inst.filled_fraction(), 0.0);
    }
}
