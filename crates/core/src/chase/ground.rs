//! Grounding (the paper's procedure `Instantiation`, Section 5).
//!
//! Grounding partially evaluates every accuracy rule against the entity
//! instance (form-(1) rules: every ordered tuple pair) and the master relations
//! (form-(2) rules: every master tuple), folding away the predicates that can
//! be decided immediately and keeping the rest as *pending predicates*.  The
//! result is a set `Γ` of [`GroundStep`]s: potential single chase steps, each
//! with the list of events that must happen before it becomes applicable.
//!
//! Two kinds of pending predicates remain after folding:
//!
//! * [`PendingPred::Order`] — "class `lo` must become `⪯` class `hi` on
//!   attribute `A`"; fired by the transitive-closure output of the orders;
//! * [`PendingPred::TargetCmp`] — "once `te[A]` is defined it must compare as
//!   `op` against `rhs`"; fired when the target attribute is instantiated.
//!   (Predicates on *undefined* target attributes are never considered
//!   satisfied; in particular `te[A] = null` premises never fire, which matches
//!   the intent of ϕ8-style rules.)
//!
//! Grounding is independent of the initial target template, so the same `Γ`
//! can be reused to chase many candidate targets of one specification — this is
//! what makes the `check` calls of the top-k algorithms cheap.

use super::spec::Specification;
use crate::rules::{
    AccuracyRule, MasterPremise, MasterRule, Operand, Predicate, RuleSet, TupleRef, TupleRule,
};
use relacc_model::{
    AccuracyOrders, AttrId, ClassId, CmpOp, EntityInstance, MasterRelation, TupleId, Value,
};
use std::collections::{HashMap, HashSet};

/// Where a ground step came from (used in diagnostics and conflict reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepOrigin {
    /// The rule at this index of the specification's rule set.
    Rule(usize),
    /// The built-in axiom ϕ7 (null has lowest accuracy).
    AxiomNullLowest,
    /// The built-in axiom ϕ8 (a defined target value has highest accuracy).
    AxiomTargetHighest,
    /// The built-in axiom ϕ9 (equal values are mutually `⪯`); its only visible
    /// effect under the value-class representation is the λ update that
    /// instantiates the target when a single value class dominates an
    /// attribute.
    AxiomEqualValues,
    /// A candidate value seeded by the checkpointed `check`
    /// ([`crate::chase::checkpoint`]): the delta replay sets `te[a] := v` for
    /// every `Z` attribute of the candidate, mirroring the full chase's
    /// initial-template announcement.
    CandidateSeed,
}

/// A predicate that must be established before a ground step can fire.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PendingPred {
    /// Class `lo ⪯ hi` must hold on `attr` (`lo ≠ hi` by construction, so this
    /// covers both `≺` and `⪯` premises).
    Order {
        /// Attribute of the order.
        attr: AttrId,
        /// Lower class.
        lo: ClassId,
        /// Upper class.
        hi: ClassId,
    },
    /// `te[attr] op rhs` must hold once `te[attr]` is defined.
    TargetCmp {
        /// Target attribute.
        attr: AttrId,
        /// Comparison operator (already normalized so the target is on the left).
        op: CmpOp,
        /// Right-hand constant.
        rhs: Value,
    },
}

impl PendingPred {
    /// Evaluate a target predicate against a newly defined target value.
    /// `Order` predicates are satisfied by construction when their event fires,
    /// so they always evaluate to `true` here.
    pub fn eval_target(&self, value: &Value) -> bool {
        match self {
            PendingPred::Order { .. } => true,
            PendingPred::TargetCmp { op, rhs, .. } => value.eval(*op, rhs).unwrap_or(false),
        }
    }
}

/// The conclusion a ground step enforces when it fires.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StepAction {
    /// Extend the order of `attr` with `lo ⪯ hi` (distinct classes).
    Order {
        /// Attribute of the order.
        attr: AttrId,
        /// Lower class.
        lo: ClassId,
        /// Upper class.
        hi: ClassId,
    },
    /// Instantiate target attributes with constants (from master data).
    Assign {
        /// `(attribute, value)` assignments; values are never null.
        assignments: Vec<(AttrId, Value)>,
    },
}

/// A potential single chase step produced by grounding.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundStep {
    /// Which rule or axiom produced the step.
    pub origin: StepOrigin,
    /// The conclusion to enforce.
    pub action: StepAction,
    /// Predicates that must be established first (`n_φ` of the paper counts
    /// these).
    pub pending: Vec<PendingPred>,
}

/// The grounded rule set `Γ` plus grounding statistics.
#[derive(Debug, Clone, Default)]
pub struct Grounding {
    /// The ground steps.
    pub steps: Vec<GroundStep>,
    /// Number of ordered tuple pairs examined for form-(1) rules.
    pub pairs_considered: usize,
    /// Number of master tuples examined for form-(2) rules.
    pub master_tuples_considered: usize,
    /// Number of candidate steps dropped because an immediately evaluable
    /// premise was false, the conclusion was a no-op, or a premise was
    /// unsatisfiable.
    pub folded_away: usize,
}

impl Grounding {
    /// Empty the grounding while keeping its allocations (used by the
    /// per-worker scratch buffers of the batch engine).
    pub fn clear(&mut self) {
        self.steps.clear();
        self.pairs_considered = 0;
        self.master_tuples_considered = 0;
        self.folded_away = 0;
    }
}

/// Outcome of folding a single premise against a concrete tuple pair.
enum Folded {
    True,
    Unsatisfiable,
    Pending(PendingPred),
}

fn fold_cmp<'v>(
    ie: &'v EntityInstance,
    t1: TupleId,
    t2: TupleId,
    left: &'v Operand,
    op: CmpOp,
    right: &'v Operand,
) -> Folded {
    let resolve = |o: &'v Operand| -> Result<&'v Value, AttrId> {
        match o {
            Operand::Attr(TupleRef::T1, a) => Ok(ie.value(t1, *a)),
            Operand::Attr(TupleRef::T2, a) => Ok(ie.value(t2, *a)),
            Operand::Const(c) => Ok(c),
            Operand::Target(a) => Err(*a),
        }
    };
    match (resolve(left), resolve(right)) {
        (Ok(l), Ok(r)) => match l.eval(op, r) {
            Some(true) => Folded::True,
            _ => Folded::Unsatisfiable,
        },
        (Err(a), Ok(r)) => Folded::Pending(PendingPred::TargetCmp {
            attr: a,
            op,
            rhs: r.clone(),
        }),
        (Ok(l), Err(a)) => Folded::Pending(PendingPred::TargetCmp {
            attr: a,
            op: op.flip(),
            rhs: l.clone(),
        }),
        // Comparing two target attributes is outside the paper's rule grammar;
        // such a premise never fires.
        (Err(_), Err(_)) => Folded::Unsatisfiable,
    }
}

/// The attributes whose per-tuple value class can influence the fold of a
/// rule against a tuple pair: the conclusion plus every premise attribute
/// referenced through `t1[·]` / `t2[·]` (constants and `te[·]` operands do
/// not vary with the tuple pair).
fn referenced_attrs(rule: &TupleRule) -> Vec<AttrId> {
    let mut attrs: Vec<AttrId> = Vec::with_capacity(1 + rule.premises.len());
    attrs.push(rule.conclusion);
    for p in &rule.premises {
        match p {
            Predicate::Cmp { left, right, .. } => {
                for operand in [left, right] {
                    if let Operand::Attr(_, a) = operand {
                        attrs.push(*a);
                    }
                }
            }
            Predicate::OrderLt { attr } | Predicate::OrderLe { attr } => attrs.push(*attr),
        }
    }
    attrs.sort_unstable();
    attrs.dedup();
    attrs
}

fn ground_tuple_rule(
    rule_idx: usize,
    rule: &TupleRule,
    ie: &EntityInstance,
    orders: &AccuracyOrders,
    out: &mut Grounding,
    seen: &mut HashSet<(StepAction, Vec<PendingPred>)>,
) {
    let n = ie.len();
    if n < 2 {
        return;
    }
    // Tuples with the same value class on every attribute the rule references
    // fold identically (value classes group `same()`-equal values, and every
    // premise and the conclusion only look at those values or classes), so the
    // pair loop runs over class-signature representatives instead of all
    // `n(n-1)` ordered tuple pairs.  `pairs_considered` / `folded_away` still
    // count the underlying tuple pairs, matching the naive enumeration.
    let attrs = referenced_attrs(rule);
    let mut groups: Vec<Vec<TupleId>> = Vec::new();
    let mut by_signature: HashMap<Vec<ClassId>, usize> = HashMap::new();
    let mut signature: Vec<ClassId> = Vec::with_capacity(attrs.len());
    for i in 0..n {
        signature.clear();
        signature.extend(attrs.iter().map(|a| orders.attr(*a).class_of(TupleId(i))));
        match by_signature.get(&signature) {
            Some(&g) => groups[g].push(TupleId(i)),
            None => {
                by_signature.insert(signature.clone(), groups.len());
                groups.push(vec![TupleId(i)]);
            }
        }
    }

    let k = groups.len();
    for gi in 0..k {
        for gj in 0..k {
            let (t1, t2, underlying) = if gi == gj {
                // within a group every ordered pair folds to a no-op (the
                // conclusion classes coincide), but they still count
                if groups[gi].len() < 2 {
                    continue;
                }
                let c = groups[gi].len();
                (groups[gi][0], groups[gi][1], c * (c - 1))
            } else {
                (
                    groups[gi][0],
                    groups[gj][0],
                    groups[gi].len() * groups[gj].len(),
                )
            };
            out.pairs_considered += underlying;
            let concl = orders.attr(rule.conclusion);
            let (lo, hi) = (concl.class_of(t1), concl.class_of(t2));
            if lo == hi {
                // the conclusion is a no-op (equal values are already mutually ⪯)
                out.folded_away += underlying;
                continue;
            }
            let mut pending: Vec<PendingPred> = Vec::new();
            let mut dead = false;
            for p in &rule.premises {
                let folded = match p {
                    Predicate::Cmp { left, op, right } => fold_cmp(ie, t1, t2, left, *op, right),
                    Predicate::OrderLt { attr } | Predicate::OrderLe { attr } => {
                        let ord = orders.attr(*attr);
                        let (plo, phi) = (ord.class_of(t1), ord.class_of(t2));
                        if plo == phi {
                            // equal values: ⪯ holds, ≺ can never hold
                            if matches!(p, Predicate::OrderLe { .. }) {
                                Folded::True
                            } else {
                                Folded::Unsatisfiable
                            }
                        } else {
                            Folded::Pending(PendingPred::Order {
                                attr: *attr,
                                lo: plo,
                                hi: phi,
                            })
                        }
                    }
                };
                match folded {
                    Folded::True => {}
                    Folded::Unsatisfiable => {
                        dead = true;
                        break;
                    }
                    Folded::Pending(p) => {
                        if !pending.contains(&p) {
                            pending.push(p);
                        }
                    }
                }
            }
            if dead {
                out.folded_away += underlying;
                continue;
            }
            let action = StepAction::Order {
                attr: rule.conclusion,
                lo,
                hi,
            };
            let key = (action.clone(), pending.clone());
            if seen.insert(key) {
                out.steps.push(GroundStep {
                    origin: StepOrigin::Rule(rule_idx),
                    action,
                    pending,
                });
                out.folded_away += underlying - 1;
            } else {
                out.folded_away += underlying;
            }
        }
    }
}

fn ground_master_rule(
    rule_idx: usize,
    rule: &MasterRule,
    masters: &[MasterRelation],
    out: &mut Grounding,
    seen: &mut HashSet<(StepAction, Vec<PendingPred>)>,
) {
    let Some(master) = masters.get(rule.master_index) else {
        return;
    };
    for tm in master.tuples() {
        out.master_tuples_considered += 1;
        let mut pending: Vec<PendingPred> = Vec::new();
        let mut dead = false;
        for p in &rule.premises {
            match p {
                MasterPremise::TargetEqConst(a, c) => {
                    if c.is_null() {
                        dead = true;
                        break;
                    }
                    let pred = PendingPred::TargetCmp {
                        attr: *a,
                        op: CmpOp::Eq,
                        rhs: c.clone(),
                    };
                    if !pending.contains(&pred) {
                        pending.push(pred);
                    }
                }
                MasterPremise::TargetEqMaster(a, b) => {
                    let v = tm.value(*b);
                    if v.is_null() {
                        dead = true;
                        break;
                    }
                    let pred = PendingPred::TargetCmp {
                        attr: *a,
                        op: CmpOp::Eq,
                        rhs: v.clone(),
                    };
                    if !pending.contains(&pred) {
                        pending.push(pred);
                    }
                }
                MasterPremise::MasterEqConst(b, c) => {
                    if !tm.value(*b).same(c) {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            out.folded_away += 1;
            continue;
        }
        let assignments: Vec<(AttrId, Value)> = rule
            .assignments
            .iter()
            .filter_map(|(a, b)| {
                let v = tm.value(*b);
                if v.is_null() {
                    None
                } else {
                    Some((*a, v.clone()))
                }
            })
            .collect();
        if assignments.is_empty() {
            out.folded_away += 1;
            continue;
        }
        let action = StepAction::Assign { assignments };
        let key = (action.clone(), pending.clone());
        if seen.insert(key) {
            out.steps.push(GroundStep {
                origin: StepOrigin::Rule(rule_idx),
                action,
                pending,
            });
        } else {
            out.folded_away += 1;
        }
    }
}

/// Ground only the form-(1) rules of `rules` against an entity instance,
/// appending to `out`.  This is the entity-dependent half of `Instantiation`;
/// the form-(2) half ([`ground_master_rules`]) only depends on the master data
/// and is pre-computed once by [`crate::chase::ChasePlan`].
pub(crate) fn ground_tuple_rules(
    rules: &RuleSet,
    ie: &EntityInstance,
    orders: &AccuracyOrders,
    out: &mut Grounding,
    seen: &mut HashSet<(StepAction, Vec<PendingPred>)>,
) {
    for (idx, rule) in rules.rules().iter().enumerate() {
        if let AccuracyRule::Tuple(r) = rule {
            ground_tuple_rule(idx, r, ie, orders, out, seen);
        }
    }
}

/// Ground only the form-(2) rules of `rules` against the master relations,
/// appending to `out`.  Independent of any entity instance.
pub(crate) fn ground_master_rules(
    rules: &RuleSet,
    masters: &[MasterRelation],
    out: &mut Grounding,
    seen: &mut HashSet<(StepAction, Vec<PendingPred>)>,
) {
    for (idx, rule) in rules.rules().iter().enumerate() {
        if let AccuracyRule::Master(r) = rule {
            ground_master_rule(idx, r, masters, out, seen);
        }
    }
}

/// Ground a specification into `Γ` (the paper's `Instantiation`).
///
/// `orders` must be the freshly built [`AccuracyOrders`] of the specification's
/// entity instance — grounding only uses its (immutable) value-class structure,
/// never the order pairs.
pub fn ground(spec: &Specification, orders: &AccuracyOrders) -> Grounding {
    let mut out = Grounding::default();
    let mut seen: HashSet<(StepAction, Vec<PendingPred>)> = HashSet::new();
    ground_tuple_rules(&spec.rules, &spec.ie, orders, &mut out, &mut seen);
    ground_master_rules(&spec.rules, &spec.masters, &mut out, &mut seen);
    out
}

/// Render a step origin as a rule name, for diagnostics.
pub fn origin_name(rules: &RuleSet, origin: StepOrigin) -> String {
    match origin {
        StepOrigin::Rule(i) => rules.rule(i).name().to_string(),
        StepOrigin::AxiomNullLowest => "phi7 (axiom: null lowest)".to_string(),
        StepOrigin::AxiomTargetHighest => "phi8 (axiom: target highest)".to_string(),
        StepOrigin::AxiomEqualValues => "phi9 (axiom: equal values)".to_string(),
        StepOrigin::CandidateSeed => "candidate seed (check)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{MasterPremise, MasterRule, Predicate, RuleSet, TupleRule};
    use relacc_model::{DataType, EntityInstance, MasterRelation, Schema};

    fn instance() -> EntityInstance {
        let schema = Schema::builder("stat")
            .attr("league", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("pts", DataType::Int)
            .build();
        EntityInstance::from_rows(
            schema,
            vec![
                vec![Value::text("NBA"), Value::Int(16), Value::Int(424)],
                vec![Value::text("NBA"), Value::Int(27), Value::Int(772)],
                vec![Value::text("SL"), Value::Int(127), Value::Int(51)],
            ],
        )
        .unwrap()
    }

    fn phi1(schema: &relacc_model::SchemaRef) -> TupleRule {
        TupleRule::new(
            "phi1",
            vec![
                Predicate::cmp_attrs(schema.expect_attr("league"), CmpOp::Eq),
                Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt),
            ],
            schema.expect_attr("rnds"),
        )
    }

    #[test]
    fn constant_premises_fold_away() {
        let ie = instance();
        let schema = ie.schema().clone();
        let spec = Specification::new(ie, RuleSet::from_rules([phi1(&schema)]));
        let orders = AccuracyOrders::new(&spec.ie);
        let g = ground(&spec, &orders);
        // Only the (t1, t2) pair satisfies league-equality ∧ rnds<; both other
        // NBA orderings fail rnds< and the SL pairs fail league equality.
        assert_eq!(g.pairs_considered, 6);
        assert_eq!(g.steps.len(), 1);
        assert!(g.steps[0].pending.is_empty());
        match &g.steps[0].action {
            StepAction::Order { attr, lo, hi } => {
                assert_eq!(*attr, schema.expect_attr("rnds"));
                assert_ne!(lo, hi);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn order_premises_become_pending_and_dedup() {
        let ie = instance();
        let schema = ie.schema().clone();
        let rnds = schema.expect_attr("rnds");
        let pts = schema.expect_attr("pts");
        // phi3: t1 ≺rnds t2 → t1 ⪯pts t2  — grounds once per ordered pair.
        let rule = TupleRule::new("phi3", vec![Predicate::OrderLt { attr: rnds }], pts);
        let spec = Specification::new(ie, RuleSet::from_rules([rule]));
        let orders = AccuracyOrders::new(&spec.ie);
        let g = ground(&spec, &orders);
        assert_eq!(g.steps.len(), 6);
        assert!(g
            .steps
            .iter()
            .all(|s| matches!(s.pending.as_slice(), [PendingPred::Order { .. }])));
    }

    #[test]
    fn target_premises_normalize_to_target_cmp() {
        let ie = instance();
        let schema = ie.schema().clone();
        let rnds = schema.expect_attr("rnds");
        // t1[rnds] < te[rnds] → t1 ⪯rnds t2 (contrived but exercises flipping)
        let rule = TupleRule::new(
            "target_cmp",
            vec![Predicate::Cmp {
                left: Operand::Attr(TupleRef::T1, rnds),
                op: CmpOp::Lt,
                right: Operand::Target(rnds),
            }],
            rnds,
        );
        let spec = Specification::new(ie, RuleSet::from_rules([rule]));
        let orders = AccuracyOrders::new(&spec.ie);
        let g = ground(&spec, &orders);
        assert!(!g.steps.is_empty());
        for s in &g.steps {
            match &s.pending[0] {
                PendingPred::TargetCmp { attr, op, rhs } => {
                    assert_eq!(*attr, rnds);
                    assert_eq!(*op, CmpOp::Gt); // flipped: te[rnds] > t1[rnds]
                    assert!(!rhs.is_null());
                }
                other => panic!("unexpected pending {other:?}"),
            }
        }
        // target predicate evaluation
        let pred = &g.steps[0].pending[0];
        assert!(pred.eval_target(&Value::Int(1000)));
        assert!(!pred.eval_target(&Value::Int(-5)));
    }

    #[test]
    fn master_rules_ground_per_master_tuple() {
        let ie = instance();
        let schema = ie.schema().clone();
        let master_schema = Schema::builder("m")
            .attr("league", DataType::Text)
            .attr("season", DataType::Text)
            .build();
        let im = MasterRelation::from_rows(
            master_schema,
            vec![
                vec![Value::text("NBA"), Value::text("1994-95")],
                vec![Value::text("SL"), Value::text("1993-94")],
                vec![Value::Null, Value::text("1800")],
            ],
        )
        .unwrap();
        let rule = MasterRule::new(
            "phi6",
            vec![MasterPremise::MasterEqConst(
                AttrId(1),
                Value::text("1994-95"),
            )],
            vec![(schema.expect_attr("league"), AttrId(0))],
        );
        let spec = Specification::new(ie, RuleSet::from_rules([rule])).with_master(im);
        let orders = AccuracyOrders::new(&spec.ie);
        let g = ground(&spec, &orders);
        assert_eq!(g.master_tuples_considered, 3);
        // only the 1994-95 tuple survives the master constant premise
        assert_eq!(g.steps.len(), 1);
        match &g.steps[0].action {
            StepAction::Assign { assignments } => {
                assert_eq!(assignments, &vec![(AttrId(0), Value::text("NBA"))]);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(
            origin_name(&spec.rules, g.steps[0].origin),
            "phi6".to_string()
        );
    }

    #[test]
    fn null_assignments_and_premises_are_skipped() {
        let ie = instance();
        let master_schema = Schema::builder("m").attr("league", DataType::Text).build();
        let im = MasterRelation::from_rows(master_schema, vec![vec![Value::Null]]).unwrap();
        let rule = MasterRule::new(
            "m_null",
            vec![MasterPremise::TargetEqMaster(AttrId(0), AttrId(0))],
            vec![(AttrId(0), AttrId(0))],
        );
        let spec = Specification::new(ie, RuleSet::from_rules([rule])).with_master(im);
        let orders = AccuracyOrders::new(&spec.ie);
        let g = ground(&spec, &orders);
        assert!(g.steps.is_empty());
        assert_eq!(g.folded_away, 1);
    }
}
