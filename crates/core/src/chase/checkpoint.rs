//! Checkpointed chase: resume candidate checks from the base fixpoint.
//!
//! The `check` procedure of Section 6.1 decides whether a complete tuple
//! `t'_e` is a candidate target by re-running the chase with `t'_e` as the
//! initial template.  Doing so from scratch costs `O(|Γ|)` per candidate —
//! fresh orders, a full index rebuild, and a replay of every step the base
//! deduction already fired — even though every candidate, by construction,
//! *completes* the deduced target `t_e` and differs from it only on the null
//! attributes `Z`.
//!
//! The chase is **monotone**: steps only add order pairs and define target
//! attributes, a pending predicate once satisfied stays satisfied, and every
//! target attribute ends up with the same value in the base run and in any
//! accepting candidate run (a defined target value can never change).  The
//! base fixpoint is therefore a valid prefix of *every* candidate's chasing
//! sequence, and by the Church-Rosser property (Theorem 2) the verdict of a
//! chase does not depend on the order in which applicable steps fire.  So a
//! candidate check can **resume** from the base fixpoint:
//!
//! 1. [`ChaseCheckpoint::capture`] runs the base `IsCR` chase once and
//!    freezes its terminal state — the accuracy orders, the deduced target,
//!    and the index `H` at fixpoint.  Crucially, the surviving
//!    `by_order`/`by_target` subscription buckets of the index are exactly
//!    the events that have *not* fired yet, i.e. the only events a resumed
//!    run may still have to dispatch.
//! 2. [`ChaseCheckpoint::resume_check`] seeds only the new target events
//!    `te[a] := v` for the candidate's `Z` attributes, drains the steps those
//!    events wake through the frozen subscriptions, and enforces them with
//!    the *same* validity rules as the full chase (order conflicts, target
//!    overwrites, the λ update, and the ϕ8 axiom).  Work is proportional to
//!    the steps actually affected, not to `|Γ|`.
//! 3. Every mutation — order pairs added, target attributes set, step-state
//!    transitions — is recorded in an **undo log** held by the caller's
//!    [`CheckScratch`] and rolled back after the verdict, so one checkpoint
//!    serves thousands of candidate checks without re-cloning its state.
//!
//! A candidate is accepted iff the resumed run reaches a fixpoint without an
//! invalid step; its terminal target then necessarily equals the candidate
//! (all attributes are seeded up front and non-null target values never
//! change).  The equivalence with the from-scratch `check` is property-tested
//! in `tests/prop_checkpoint.rs` at the workspace root.

use super::ground::{origin_name, GroundStep, Grounding, StepAction, StepOrigin};
use super::index::{ChaseIndex, StepState};
use super::iscr::{run_chase_with_orders, ChaseStats, Conflict, IndexedScheduler, IsCrOutcome};
use crate::rules::RuleSet;
use relacc_model::{
    AccuracyOrders, AttrId, ClassId, EntityInstance, OrderInsert, TargetTuple, Value,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing checkpoint identity, used by [`CheckScratch`] to
/// decide when its cached working copies must be re-seeded.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// The frozen terminal state of a base `IsCR` run, ready to answer candidate
/// checks by delta replay.
///
/// A checkpoint is immutable (and `Send + Sync`): the per-check mutable state
/// lives in the caller's [`CheckScratch`].  It is only valid together with
/// the exact [`Grounding`] it was captured over.
#[derive(Debug)]
pub struct ChaseCheckpoint {
    epoch: u64,
    /// Terminal accuracy orders of the base run.
    orders: AccuracyOrders,
    /// The deduced target `t_e`.
    target: TargetTuple,
    /// The index `H` at fixpoint: per-step counters plus the subscriptions of
    /// the events that never fired.
    index: ChaseIndex,
    /// Length of the grounding the checkpoint was captured over (guards
    /// against resuming with a mismatched `Γ`).
    step_count: usize,
    /// Statistics of the base run.
    stats: ChaseStats,
    /// The plan state the checkpoint was captured under, when it was captured
    /// through [`crate::chase::ChasePlan::checkpoint_with`]; `None` for
    /// plan-less captures.  Downstream caches validate against the owning
    /// plan with [`crate::chase::ChasePlan::checkpoint_is_current`].
    plan: Option<super::plan::PlanStamp>,
}

/// How a [`ChaseCheckpoint::capture`] run ended.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// The base specification is Church-Rosser; the checkpoint is ready to
    /// answer candidate checks.  Boxed: a checkpoint carries the full
    /// terminal state and dwarfs the conflict variant.
    Ready(Box<ChaseCheckpoint>),
    /// The base specification is not Church-Rosser; no candidate search is
    /// possible (the framework must reject the specification first).
    NotChurchRosser(Conflict),
}

/// The result of a capture: outcome plus the base-run statistics.
#[derive(Debug)]
pub struct CheckpointRun {
    /// Checkpoint or conflict.
    pub outcome: CheckpointOutcome,
    /// Counters of the base chase run.
    pub stats: ChaseStats,
}

/// The verdict of one resumed candidate check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeCheck {
    /// True iff the candidate is a candidate target (the resumed chase
    /// reached a fixpoint without an invalid step).
    pub accepted: bool,
    /// Ground steps replayed by the delta (the work a from-scratch check
    /// would have multiplied by `|Γ|`).
    pub steps_replayed: usize,
}

impl ChaseCheckpoint {
    /// Run the base chase over `grounding` with `initial_target` as the
    /// template and freeze its terminal state.
    ///
    /// This *is* the deduction step: callers that previously ran
    /// `chase_with_grounding` to obtain the deduced target run `capture`
    /// instead and read [`ChaseCheckpoint::target`].
    pub fn capture(
        ie: &EntityInstance,
        rules: &RuleSet,
        grounding: &Grounding,
        initial_target: &TargetTuple,
    ) -> CheckpointRun {
        Self::capture_with_index(
            ie,
            rules,
            grounding,
            AccuracyOrders::new(ie),
            initial_target,
            ChaseIndex::default(),
        )
    }

    /// [`ChaseCheckpoint::capture`] over pre-built (still empty) orders and a
    /// caller-provided index whose allocations are reused for the base run.
    ///
    /// This is the batch engine's path: one chase serves both the per-entity
    /// deduction *and* the checkpoint, with the worker's warmed
    /// [`ChaseIndex`] moved in (and recoverable afterwards through
    /// [`ChaseCheckpoint::into_index`] when no candidate checks are needed).
    pub fn capture_with_index(
        ie: &EntityInstance,
        rules: &RuleSet,
        grounding: &Grounding,
        orders: AccuracyOrders,
        initial_target: &TargetTuple,
        mut index: ChaseIndex,
    ) -> CheckpointRun {
        let run = {
            let mut scheduler = IndexedScheduler { index: &mut index };
            run_chase_with_orders(ie, rules, orders, grounding, initial_target, &mut scheduler)
        };
        let stats = run.stats;
        let outcome = match run.outcome {
            IsCrOutcome::ChurchRosser(instance) => {
                CheckpointOutcome::Ready(Box::new(ChaseCheckpoint {
                    epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
                    orders: instance.orders,
                    target: instance.target,
                    index,
                    step_count: grounding.steps.len(),
                    stats,
                    plan: None,
                }))
            }
            IsCrOutcome::NotChurchRosser(conflict) => CheckpointOutcome::NotChurchRosser(conflict),
        };
        CheckpointRun { outcome, stats }
    }

    /// Dismantle the checkpoint, returning its index (with all its warmed
    /// allocations) to the caller — used by the batch engine to hand the
    /// worker scratch its index back when an entity needs no candidate
    /// checks.
    pub fn into_index(self) -> ChaseIndex {
        self.index
    }

    /// The deduced target `t_e` of the base run.
    pub fn target(&self) -> &TargetTuple {
        &self.target
    }

    /// The terminal accuracy orders of the base run.
    pub fn orders(&self) -> &AccuracyOrders {
        &self.orders
    }

    /// Statistics of the base chase run.
    pub fn stats(&self) -> &ChaseStats {
        &self.stats
    }

    /// The plan state this checkpoint was captured under (`None` when it was
    /// captured without a plan).
    pub fn plan_stamp(&self) -> Option<super::plan::PlanStamp> {
        self.plan
    }

    /// Stamp the plan state the checkpoint belongs to (set by
    /// [`crate::chase::ChasePlan::checkpoint_with`]).
    pub(crate) fn set_plan_stamp(&mut self, stamp: super::plan::PlanStamp) {
        self.plan = Some(stamp);
    }

    /// The `check` of Section 6.1, resumed from the base fixpoint: is
    /// `candidate` a candidate target?
    ///
    /// `rules` and `grounding` must be the ones the checkpoint was captured
    /// with.  The scratch is rebound automatically when it last served a
    /// different checkpoint; after the call it is back in the checkpoint's
    /// base state, ready for the next candidate.
    pub fn resume_check(
        &self,
        rules: &RuleSet,
        grounding: &Grounding,
        candidate: &TargetTuple,
        scratch: &mut CheckScratch,
    ) -> ResumeCheck {
        assert_eq!(
            grounding.steps.len(),
            self.step_count,
            "resume_check called with a grounding that does not match the checkpoint"
        );
        if !candidate.is_complete() || !self.target.is_completed_by(candidate) {
            return ResumeCheck {
                accepted: false,
                steps_replayed: 0,
            };
        }
        scratch.bind(self);
        let (accepted, steps_replayed) = {
            let mut delta = DeltaChaser {
                rules,
                steps: &grounding.steps,
                index: &self.index,
                orders: scratch.orders.as_mut().expect("scratch bound"),
                target: &mut scratch.target,
                states: &mut scratch.states,
                ready: &mut scratch.ready,
                events: &mut scratch.events,
                undo_orders: &mut scratch.undo_orders,
                undo_targets: &mut scratch.undo_targets,
                undo_states: &mut scratch.undo_states,
                steps_replayed: 0,
            };
            let verdict = delta.run(candidate);
            (verdict.is_ok(), delta.steps_replayed)
        };
        debug_assert!(!accepted || &scratch.target == candidate);
        scratch.rollback();
        ResumeCheck {
            accepted,
            steps_replayed,
        }
    }
}

/// Reusable per-caller buffers for resumed checks: the working copies of the
/// checkpoint state plus the undo logs.
///
/// A scratch binds lazily to the checkpoint it serves (cloning the base state
/// once) and is restored to that base state after every check, so a sequence
/// of thousands of checks against one checkpoint costs one clone total.
/// Rebinding to another checkpoint re-seeds the copies; alternating between
/// checkpoints with a single scratch therefore thrashes — keep one scratch
/// per concurrently used checkpoint (the batch engine keeps one per worker).
#[derive(Debug)]
pub struct CheckScratch {
    epoch: u64,
    orders: Option<AccuracyOrders>,
    target: TargetTuple,
    states: Vec<StepState>,
    ready: VecDeque<usize>,
    events: VecDeque<DeltaEvent>,
    undo_orders: Vec<(AttrId, ClassId, ClassId)>,
    undo_targets: Vec<AttrId>,
    undo_states: Vec<(usize, StepState)>,
}

impl Default for CheckScratch {
    fn default() -> Self {
        CheckScratch {
            epoch: 0,
            orders: None,
            target: TargetTuple::empty(0),
            states: Vec::new(),
            ready: VecDeque::new(),
            events: VecDeque::new(),
            undo_orders: Vec::new(),
            undo_targets: Vec::new(),
            undo_states: Vec::new(),
        }
    }
}

impl CheckScratch {
    /// Fresh, unbound buffers.
    pub fn new() -> Self {
        CheckScratch::default()
    }

    /// Seed the working copies from `ck` unless they already mirror it.
    fn bind(&mut self, ck: &ChaseCheckpoint) {
        if self.epoch == ck.epoch {
            return;
        }
        match &mut self.orders {
            Some(orders) => orders.clone_from(&ck.orders),
            None => self.orders = Some(ck.orders.clone()),
        }
        self.target.clone_from(&ck.target);
        self.states.clear();
        self.states.extend_from_slice(ck.index.states());
        self.ready.clear();
        self.events.clear();
        self.undo_orders.clear();
        self.undo_targets.clear();
        self.undo_states.clear();
        self.epoch = ck.epoch;
    }

    /// Replay the undo logs, restoring the working copies to the bound
    /// checkpoint's base state.
    fn rollback(&mut self) {
        let orders = self.orders.as_mut().expect("rollback on unbound scratch");
        for (attr, lo, hi) in self.undo_orders.drain(..).rev() {
            orders.attr_mut(attr).retract_class_le(lo, hi);
        }
        for attr in self.undo_targets.drain(..).rev() {
            self.target.set(attr, Value::Null);
        }
        for (id, state) in self.undo_states.drain(..).rev() {
            self.states[id] = state;
        }
        self.ready.clear();
        self.events.clear();
    }
}

/// Events produced while enforcing delta steps, dispatched through the
/// checkpoint's frozen subscriptions.
#[derive(Debug)]
enum DeltaEvent {
    Order(AttrId, ClassId, ClassId),
    Target(AttrId, Value),
}

/// The delta enforcement loop: the same validity rules, λ update and ϕ8
/// handling as [`super::iscr::Chaser`], but operating on the scratch's
/// working copies with undo logging, and dispatching events through the
/// checkpoint's surviving subscriptions instead of a mutable index.
struct DeltaChaser<'a> {
    rules: &'a RuleSet,
    steps: &'a [GroundStep],
    index: &'a ChaseIndex,
    orders: &'a mut AccuracyOrders,
    target: &'a mut TargetTuple,
    states: &'a mut Vec<StepState>,
    ready: &'a mut VecDeque<usize>,
    events: &'a mut VecDeque<DeltaEvent>,
    undo_orders: &'a mut Vec<(AttrId, ClassId, ClassId)>,
    undo_targets: &'a mut Vec<AttrId>,
    undo_states: &'a mut Vec<(usize, StepState)>,
    steps_replayed: usize,
}

impl DeltaChaser<'_> {
    /// Seed the candidate's `Z` values, then drain the woken steps to a
    /// fixpoint.  `Err` means the candidate is rejected.
    fn run(&mut self, candidate: &TargetTuple) -> Result<(), Conflict> {
        for a in 0..self.target.arity() {
            let attr = AttrId(a);
            if self.target.is_null(attr) {
                let value = candidate.value(attr).clone();
                self.set_target(StepOrigin::CandidateSeed, attr, value)?;
                self.drain_events();
            } else {
                // a λ update of an earlier seed may have raced ahead and set
                // this attribute — with a value that must match the candidate
                // (the full chase would have detected the mismatch at its
                // initial-template announcement)
                if !self.target.value(attr).same(candidate.value(attr)) {
                    return Err(self.conflict(
                        StepOrigin::CandidateSeed,
                        attr,
                        format!(
                            "deduction forces {} where the candidate has {}",
                            self.target.value(attr),
                            candidate.value(attr)
                        ),
                    ));
                }
            }
        }
        while let Some(id) = self.pop_ready() {
            self.steps_replayed += 1;
            let step = &self.steps[id];
            self.apply(step.origin, &step.action)?;
            self.drain_events();
        }
        Ok(())
    }

    fn conflict(&self, origin: StepOrigin, attr: AttrId, detail: impl Into<String>) -> Conflict {
        Conflict {
            rule: origin_name(self.rules, origin),
            attr,
            detail: detail.into(),
        }
    }

    fn pop_ready(&mut self) -> Option<usize> {
        while let Some(id) = self.ready.pop_front() {
            if !self.states[id].dead {
                return Some(id);
            }
        }
        None
    }

    /// Enforce one woken ground step (mirrors `Chaser::apply`).
    fn apply(&mut self, origin: StepOrigin, action: &StepAction) -> Result<bool, Conflict> {
        match action {
            StepAction::Order { attr, lo, hi } => self.insert_order(origin, *attr, *lo, *hi),
            StepAction::Assign { assignments } => {
                let mut changed = false;
                for (attr, value) in assignments {
                    changed |= self.set_target(origin, *attr, value.clone())?;
                }
                Ok(changed)
            }
        }
    }

    /// Enforce `lo ⪯ hi` with undo logging (mirrors `Chaser::insert_order`,
    /// including the λ update).
    fn insert_order(
        &mut self,
        origin: StepOrigin,
        attr: AttrId,
        lo: ClassId,
        hi: ClassId,
    ) -> Result<bool, Conflict> {
        match self.orders.attr_mut(attr).insert_class_le(lo, hi) {
            OrderInsert::Conflict => Err(self.conflict(
                origin,
                attr,
                format!(
                    "inserting {lo} ⪯ {hi} would relate two different values in both directions"
                ),
            )),
            OrderInsert::NoChange => Ok(false),
            OrderInsert::Added(pairs) => {
                for (a, b) in &pairs {
                    self.undo_orders.push((attr, *a, *b));
                    self.events.push_back(DeltaEvent::Order(attr, *a, *b));
                }
                let greatest = self.orders.attr(attr).greatest().map(|(_, v)| v.clone());
                if let Some(v) = greatest {
                    if self.target.is_null(attr) {
                        self.set_target(origin, attr, v)?;
                    } else if !self.target.value(attr).same(&v) {
                        return Err(self.conflict(
                            origin,
                            attr,
                            format!(
                                "the most accurate value {v} disagrees with the already \
                                 deduced target value {}",
                                self.target.value(attr)
                            ),
                        ));
                    }
                }
                Ok(true)
            }
        }
    }

    /// Instantiate `te[attr] := value` with undo logging (mirrors
    /// `Chaser::set_target`).
    fn set_target(
        &mut self,
        origin: StepOrigin,
        attr: AttrId,
        value: Value,
    ) -> Result<bool, Conflict> {
        if self.target.is_null(attr) {
            self.target.set(attr, value);
            self.undo_targets.push(attr);
            self.announce_target(attr)?;
            Ok(true)
        } else if self.target.value(attr).same(&value) {
            Ok(false)
        } else {
            Err(self.conflict(
                origin,
                attr,
                format!(
                    "assignment {value} conflicts with the already deduced target value {}",
                    self.target.value(attr)
                ),
            ))
        }
    }

    /// Emit the target event and enforce ϕ8 (mirrors
    /// `Chaser::announce_target`).
    fn announce_target(&mut self, attr: AttrId) -> Result<(), Conflict> {
        let value = self.target.value(attr).clone();
        self.events
            .push_back(DeltaEvent::Target(attr, value.clone()));
        if self.rules.axioms.target_highest {
            let (target_class, others) = {
                let ord = self.orders.attr(attr);
                match ord.class_of_value(&value) {
                    Some(tc) => {
                        let others: Vec<ClassId> = (0..ord.num_classes())
                            .map(ClassId)
                            .filter(|c| *c != tc)
                            .collect();
                        (tc, others)
                    }
                    None => return Ok(()),
                }
            };
            for c in others {
                self.insert_order(StepOrigin::AxiomTargetHighest, attr, c, target_class)?;
            }
        }
        Ok(())
    }

    /// Dispatch queued events through the checkpoint's frozen subscriptions
    /// (mirrors `ChaseIndex::on_order_added` / `on_target_set`; the frozen
    /// buckets are never consumed, the per-step undo log plays their role).
    fn drain_events(&mut self) {
        while let Some(event) = self.events.pop_front() {
            match event {
                DeltaEvent::Order(attr, lo, hi) => {
                    for &id in self.index.order_subscribers(attr, lo, hi) {
                        self.decrement(id);
                    }
                }
                DeltaEvent::Target(attr, value) => {
                    for &(id, pidx) in self.index.target_subscribers(attr) {
                        let state = self.states[id];
                        if state.dead {
                            continue;
                        }
                        if self.steps[id].pending[pidx].eval_target(&value) {
                            self.decrement(id);
                        } else if !state.enqueued {
                            self.touch(id);
                            self.states[id].dead = true;
                        }
                        // an already-enqueued step stays queued, exactly as in
                        // the full chase's index
                    }
                }
            }
        }
    }

    /// Record a step's pre-mutation state for rollback.
    fn touch(&mut self, id: usize) {
        self.undo_states.push((id, self.states[id]));
    }

    /// One pending predicate of step `id` became satisfied (mirrors
    /// `ChaseIndex::decrement`).
    fn decrement(&mut self, id: usize) {
        let state = self.states[id];
        if state.dead || state.enqueued {
            if !state.enqueued {
                self.touch(id);
                let remaining = &mut self.states[id].remaining;
                *remaining = remaining.saturating_sub(1);
            }
            return;
        }
        self.touch(id);
        self.states[id].remaining -= 1;
        if self.states[id].remaining == 0 {
            self.states[id].enqueued = true;
            self.ready.push_back(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::ground::ground;
    use crate::chase::iscr::chase_with_grounding;
    use crate::chase::spec::Specification;
    use crate::rules::{MasterRule, Predicate, RuleSet, TupleRule};
    use relacc_model::{CmpOp, DataType, MasterRelation, Schema, TupleId};

    /// rnds deducible; team/arena open (the Example 9 shape).
    fn open_spec() -> Specification {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .attr("arena", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![
                    Value::Int(16),
                    Value::text("Chicago"),
                    Value::text("Chicago Stadium"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("United Center"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("Regions Park"),
                ],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "phi1",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        )]);
        Specification::new(ie, rules)
    }

    fn capture_spec(spec: &Specification) -> (ChaseCheckpoint, Grounding) {
        let orders = AccuracyOrders::new(&spec.ie);
        let grounding = ground(spec, &orders);
        let run = ChaseCheckpoint::capture(&spec.ie, &spec.rules, &grounding, &spec.initial_target);
        match run.outcome {
            CheckpointOutcome::Ready(ck) => (*ck, grounding),
            CheckpointOutcome::NotChurchRosser(c) => panic!("expected Church-Rosser, got {c}"),
        }
    }

    fn full_check(spec: &Specification, grounding: &Grounding, candidate: &TargetTuple) -> bool {
        let run = chase_with_grounding(spec, grounding, candidate);
        match run.outcome {
            IsCrOutcome::ChurchRosser(instance) => &instance.target == candidate,
            IsCrOutcome::NotChurchRosser(_) => false,
        }
    }

    #[test]
    fn capture_deduces_the_base_target() {
        let spec = open_spec();
        let (ck, _) = capture_spec(&spec);
        assert_eq!(ck.target().value(AttrId(0)), &Value::Int(27));
        assert!(ck.target().is_null(AttrId(1)));
        assert!(ck.target().is_null(AttrId(2)));
        assert!(ck.stats().steps_applied > 0);
        assert!(ck.orders().total_edges() > 0);
    }

    #[test]
    fn resume_agrees_with_full_check_on_the_whole_domain() {
        let spec = open_spec();
        let (ck, grounding) = capture_spec(&spec);
        let mut scratch = CheckScratch::new();
        for team in ["Chicago", "Chicago Bulls"] {
            for arena in ["Chicago Stadium", "United Center", "Regions Park"] {
                let candidate = TargetTuple::from_values(vec![
                    Value::Int(27),
                    Value::text(team),
                    Value::text(arena),
                ]);
                let resumed = ck.resume_check(&spec.rules, &grounding, &candidate, &mut scratch);
                let full = full_check(&spec, &grounding, &candidate);
                assert_eq!(resumed.accepted, full, "team={team} arena={arena}");
            }
        }
    }

    #[test]
    fn resume_rejects_candidates_contradicting_master_data() {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("flag", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![Value::Int(16), Value::Null],
                vec![Value::Int(27), Value::text("x")],
                vec![Value::Int(1), Value::text("y")],
            ],
        )
        .unwrap();
        let master_schema = Schema::builder("m").attr("flag", DataType::Text).build();
        let im = MasterRelation::from_rows(master_schema, vec![vec![Value::text("x")]]).unwrap();
        let rules = RuleSet::from_rules([
            crate::rules::AccuracyRule::from(TupleRule::new(
                "cur",
                vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
                schema.expect_attr("rnds"),
            )),
            crate::rules::AccuracyRule::from(MasterRule::new(
                "m1",
                vec![],
                vec![(AttrId(1), AttrId(0))],
            )),
        ]);
        let spec = Specification::new(ie, rules).with_master(im);
        // the master rule is unconditional, so flag is deduced; both targets
        // are complete already and only the agreeing one passes
        let (ck, grounding) = capture_spec(&spec);
        let mut scratch = CheckScratch::new();
        let good = TargetTuple::from_values(vec![Value::Int(27), Value::text("x")]);
        let bad = TargetTuple::from_values(vec![Value::Int(27), Value::text("y")]);
        assert!(
            ck.resume_check(&spec.rules, &grounding, &good, &mut scratch)
                .accepted
        );
        assert!(
            !ck.resume_check(&spec.rules, &grounding, &bad, &mut scratch)
                .accepted
        );
        assert!(full_check(&spec, &grounding, &good));
        assert!(!full_check(&spec, &grounding, &bad));
    }

    #[test]
    fn delta_replays_affected_steps_and_rolls_back() {
        // A correlated rule waiting on the team target: seeding the candidate
        // must wake and replay it, λ must then deduce the rank attribute, and
        // the rollback must restore the base state so the next check starts
        // clean.
        let schema = Schema::builder("r")
            .attr("team", DataType::Text)
            .attr("rank", DataType::Int)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![Value::text("Bulls"), Value::Int(2)],
                vec![Value::text("Sox"), Value::Int(1)],
            ],
        )
        .unwrap();
        // te[team] = "Bulls" ∧ t1[rank] < t2[rank] → t1 ⪯rank t2
        let rule = TupleRule::new(
            "corr",
            vec![
                Predicate::Cmp {
                    left: crate::rules::Operand::Target(AttrId(0)),
                    op: CmpOp::Eq,
                    right: crate::rules::Operand::Const(Value::text("Bulls")),
                },
                Predicate::cmp_attrs(AttrId(1), CmpOp::Lt),
            ],
            AttrId(1),
        );
        let spec = Specification::new(ie, RuleSet::from_rules([rule]));
        let (ck, grounding) = capture_spec(&spec);
        assert!(ck.target().is_null(AttrId(0)));
        assert!(ck.target().is_null(AttrId(1)));
        let mut scratch = CheckScratch::new();
        // seeding team=Bulls wakes the rule, 1 ⪯ 2 is added, λ deduces
        // rank=2 — agreeing with the candidate
        let accepted = TargetTuple::from_values(vec![Value::text("Bulls"), Value::Int(2)]);
        let first = ck.resume_check(&spec.rules, &grounding, &accepted, &mut scratch);
        assert!(first.accepted);
        assert!(full_check(&spec, &grounding, &accepted));
        assert!(first.steps_replayed > 0, "the correlated step must replay");
        // λ's deduction contradicts rank=1
        let rejected = TargetTuple::from_values(vec![Value::text("Bulls"), Value::Int(1)]);
        let verdict = ck.resume_check(&spec.rules, &grounding, &rejected, &mut scratch);
        assert!(!verdict.accepted);
        assert!(!full_check(&spec, &grounding, &rejected));
        // with team=Sox the rule never fires and both ranks stay possible
        for rank in [1, 2] {
            let open = TargetTuple::from_values(vec![Value::text("Sox"), Value::Int(rank)]);
            let resumed = ck.resume_check(&spec.rules, &grounding, &open, &mut scratch);
            assert_eq!(resumed.accepted, full_check(&spec, &grounding, &open));
        }
        // rollback restored the base state: repeating the first check after
        // the interleaved rejections is bit-identical
        let again = ck.resume_check(&spec.rules, &grounding, &accepted, &mut scratch);
        assert_eq!(first, again);
    }

    #[test]
    fn incomplete_or_contradicting_candidates_are_rejected_cheaply() {
        let spec = open_spec();
        let (ck, grounding) = capture_spec(&spec);
        let mut scratch = CheckScratch::new();
        let incomplete =
            TargetTuple::from_values(vec![Value::Int(27), Value::text("Chicago"), Value::Null]);
        let verdict = ck.resume_check(&spec.rules, &grounding, &incomplete, &mut scratch);
        assert!(!verdict.accepted);
        assert_eq!(verdict.steps_replayed, 0);
        // disagreeing with the deduced rnds value
        let contradicting = TargetTuple::from_values(vec![
            Value::Int(16),
            Value::text("Chicago"),
            Value::text("United Center"),
        ]);
        let verdict = ck.resume_check(&spec.rules, &grounding, &contradicting, &mut scratch);
        assert!(!verdict.accepted);
        assert_eq!(verdict.steps_replayed, 0);
    }

    #[test]
    fn one_scratch_serves_interleaved_checkpoints() {
        let spec_a = open_spec();
        let (ck_a, grounding_a) = capture_spec(&spec_a);
        let schema = Schema::builder("q").attr("x", DataType::Int).build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        let spec_b = Specification::new(ie, RuleSet::new());
        let (ck_b, grounding_b) = capture_spec(&spec_b);

        let mut scratch = CheckScratch::new();
        let cand_a = TargetTuple::from_values(vec![
            Value::Int(27),
            Value::text("Chicago Bulls"),
            Value::text("United Center"),
        ]);
        let cand_b = TargetTuple::from_values(vec![Value::Int(2)]);
        // interleave: the scratch rebinds each time the checkpoint changes
        for _ in 0..3 {
            assert!(
                ck_a.resume_check(&spec_a.rules, &grounding_a, &cand_a, &mut scratch)
                    .accepted
            );
            assert!(
                ck_b.resume_check(&spec_b.rules, &grounding_b, &cand_b, &mut scratch)
                    .accepted
            );
        }
    }

    #[test]
    fn phi7_null_class_edges_survive_into_the_checkpoint() {
        // A null in an open column: the base run's ϕ7 edge (null below the
        // other classes) is part of the checkpoint; seeding the candidate
        // value must still accept.
        let schema = Schema::builder("r")
            .attr("a", DataType::Int)
            .attr("b", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(2), Value::text("x")],
                vec![Value::Int(2), Value::text("y")],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "cur",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Lt)],
            AttrId(0),
        )]);
        let spec = Specification::new(ie, rules);
        let (ck, grounding) = capture_spec(&spec);
        let null_class = ck.orders().attr(AttrId(1)).null_class().unwrap();
        assert!(ck
            .orders()
            .attr(AttrId(1))
            .class_le(null_class, ck.orders().attr(AttrId(1)).class_of(TupleId(1))));
        let mut scratch = CheckScratch::new();
        for v in ["x", "y"] {
            let candidate = TargetTuple::from_values(vec![Value::Int(2), Value::text(v)]);
            let resumed = ck.resume_check(&spec.rules, &grounding, &candidate, &mut scratch);
            assert_eq!(
                resumed.accepted,
                full_check(&spec, &grounding, &candidate),
                "value {v}"
            );
        }
    }
}
