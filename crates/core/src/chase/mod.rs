//! The chase inference system: specifications, grounding, the index `H`, the
//! `IsCR` algorithm, the compile-once [`ChasePlan`], the checkpoint/resume
//! layer for candidate checks ([`ChaseCheckpoint`]) and the free-order chase
//! used as a testing oracle.

pub mod checkpoint;
pub mod free;
pub mod ground;
pub mod index;
pub mod iscr;
pub mod plan;
pub mod spec;

pub use checkpoint::{
    ChaseCheckpoint, CheckScratch, CheckpointOutcome, CheckpointRun, ResumeCheck,
};
pub use free::{free_chase, free_chase_with_grounding, SplitMix64};
pub use ground::{ground, origin_name, GroundStep, Grounding, PendingPred, StepAction, StepOrigin};
pub use index::ChaseIndex;
pub use iscr::{
    chase_with_grounding, deduced_target, is_cr, naive_chase_with_grounding, naive_is_cr, ChaseRun,
    ChaseStats, Conflict, IsCrOutcome,
};
pub use plan::{
    ChasePlan, ChaseScratch, GroundedMasterDelta, MasterDeltaApplied, MasterUpdate, PlanDeltaError,
    PlanStamp,
};
pub use spec::{AccuracyInstance, Specification, SpecificationError};
