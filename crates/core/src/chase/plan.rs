//! Compile-once / evaluate-many chase plans.
//!
//! The paper's `IsCR` is defined per specification, and the seed implementation
//! paid the full setup cost — rule validation, master-rule grounding, index
//! allocation, rule-set and master-data clones — once per entity.  A
//! [`ChasePlan`] hoists everything that does **not** depend on the entity
//! instance into a single compilation step:
//!
//! * the rule set is validated against the schema and master arities once;
//! * master data and rule constants are interned (see
//!   [`relacc_model::Interner`]), so every text comparison on the chase hot
//!   path starts with a pointer check;
//! * form-(2) rules are pre-grounded: their ground steps range over master
//!   tuples only, so the `|Σ2| × |Im|` grounding loop runs once per plan
//!   instead of once per entity;
//! * rules and master data live behind `Arc`s, so building a per-entity
//!   [`Specification`] is a reference-count bump, not a deep clone.
//!
//! Per-entity evaluation then only grounds the form-(1) rules against the
//! entity instance and runs the shared chase loop.  A [`ChaseScratch`] holds
//! the grounding buffer, the dedup set and the event index of one worker, so
//! a batch run reuses those allocations across every entity it processes.
//!
//! ```
//! use relacc_core::chase::{ChasePlan, ChaseScratch};
//! use relacc_core::rules::{Predicate, RuleSet, TupleRule};
//! use relacc_model::{CmpOp, DataType, EntityInstance, Schema, Value};
//!
//! let schema = Schema::builder("stat")
//!     .attr("rnds", DataType::Int)
//!     .attr("pts", DataType::Int)
//!     .build();
//! let rules = RuleSet::from_rules([TupleRule::new(
//!     "cur",
//!     vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
//!     schema.expect_attr("rnds"),
//! )]);
//! let plan = ChasePlan::compile(schema.clone(), rules, vec![]).unwrap();
//! let mut scratch = ChaseScratch::new();
//! for rows in [vec![vec![Value::Int(1)], vec![Value::Int(2)]]] {
//!     let rows: Vec<Vec<Value>> = rows
//!         .into_iter()
//!         .map(|r| vec![r[0].clone(), Value::Null])
//!         .collect();
//!     let ie = EntityInstance::from_rows(schema.clone(), rows).unwrap();
//!     let run = plan.is_cr_with(&ie, &mut scratch);
//!     assert!(run.outcome.is_church_rosser());
//! }
//! ```

use super::checkpoint::{ChaseCheckpoint, CheckScratch, CheckpointOutcome, CheckpointRun};
use super::ground::{
    ground_master_rules, ground_tuple_rules, GroundStep, Grounding, PendingPred, StepAction,
};
use super::index::ChaseIndex;
use super::iscr::{chase_parts, ChaseRun};
use super::spec::{Specification, SpecificationError};
use crate::rules::RuleSet;
use relacc_model::{
    AccuracyOrders, EntityInstance, Interner, MasterRelation, SchemaError, SchemaRef, TargetTuple,
    Value,
};
use std::collections::HashSet;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide plan-identity counter (see [`PlanStamp`]).
static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(1);

/// The identity + version of a compiled plan at one point in time.
///
/// Every compiled plan gets a fresh process-unique identity; every in-place
/// [`ChasePlan::apply_master_delta`] bumps its version.  A
/// [`ChaseCheckpoint`] captured through [`ChasePlan::checkpoint_with`] records
/// the stamp it was captured under, and
/// [`ChasePlan::checkpoint_is_current`] compares stamps — so state cached
/// against an evolving plan (the incremental engine's per-block results, a
/// session's checkpoint) can tell "still valid" apart from "captured against
/// an older master set or a recompiled plan".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanStamp {
    /// Process-unique identity of the compiled plan.
    pub plan: u64,
    /// Number of in-place master deltas applied since compilation.
    pub version: u64,
}

/// An update to a plan's master data.
///
/// Only **appends** can be applied in place (the chase is monotone in its
/// ground steps, so new master tuples only *add* pre-grounded form-(2)
/// steps); deletions — like rule changes — invalidate the plan and must go
/// through a recompile ([`ChasePlan::compile`] over the updated inputs),
/// which yields a fresh [`PlanStamp`] identity so stale checkpoints cannot
/// validate against the new plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MasterUpdate {
    /// Index of the master relation the update targets.
    pub master: usize,
    /// Rows to append (validated against the master schema).
    pub appends: Vec<Vec<Value>>,
    /// Indices of master tuples to delete.  Non-empty deletes are rejected
    /// with [`PlanDeltaError::RequiresRecompile`].
    pub deletes: Vec<usize>,
}

impl MasterUpdate {
    /// An append-only update against master relation `master`.
    pub fn append(master: usize, rows: Vec<Vec<Value>>) -> Self {
        MasterUpdate {
            master,
            appends: rows,
            deletes: Vec::new(),
        }
    }
}

/// What an in-place master delta did to the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasterDeltaApplied {
    /// The plan's stamp after the delta.
    pub stamp: PlanStamp,
    /// Flattened indices (into the plan's pre-grounded step sequence, counted
    /// by [`ChasePlan::master_step_count`]) of the ground steps the delta
    /// added — the only steps a cached repair needs to test entities against.
    pub new_steps: Range<usize>,
    /// Number of master tuples appended.
    pub appended: usize,
}

/// A master-data append grounded **once** against a plan state, ready to be
/// adopted by any plan clone sharing that state.
///
/// Produced by [`ChasePlan::ground_master_delta`]; consumed by
/// [`ChasePlan::adopt_master_delta`].  The appended rows are validated and
/// interned, and the contributed ground steps (already duplicate-folded
/// exactly like compilation) sit behind an `Arc`, so `N` plan clones adopting
/// the same delta — the sharded engine's broadcast — share one immutable step
/// block instead of re-running the `|Σ2| × |Δ|` grounding loop `N` times.
#[derive(Debug, Clone)]
pub struct GroundedMasterDelta {
    /// The stamp of the plan state the delta was grounded against; adoption
    /// demands an exact match.
    base: PlanStamp,
    /// Index of the master relation the rows extend.
    master: usize,
    /// The validated, interned rows to append.
    rows: Vec<Vec<Value>>,
    /// The pre-grounded form-(2) steps the rows contribute, post-folding,
    /// shared by every adopter.
    steps: Arc<Vec<GroundStep>>,
    /// Master tuples the grounding loop considered.
    tuples_considered: usize,
    /// Candidate steps folded away as duplicates.
    folded_away: usize,
}

impl GroundedMasterDelta {
    /// The plan state the delta was grounded against.
    pub fn base(&self) -> PlanStamp {
        self.base
    }

    /// Number of master rows the delta appends.
    pub fn appended(&self) -> usize {
        self.rows.len()
    }

    /// The shared, immutable block of ground steps the delta contributes
    /// (empty when every candidate step folded into an existing one).
    pub fn steps(&self) -> &Arc<Vec<GroundStep>> {
        &self.steps
    }
}

/// Errors from [`ChasePlan::apply_master_delta`] and the split
/// [`ChasePlan::ground_master_delta`] / [`ChasePlan::adopt_master_delta`]
/// pair.
#[derive(Debug)]
pub enum PlanDeltaError {
    /// The update targets a master relation the plan does not have.
    NoSuchMaster(usize),
    /// An appended row does not conform to the master schema.
    Schema(SchemaError),
    /// The update is not a pure append (master deletions, like rule changes,
    /// are not monotone): recompile the plan over the updated inputs instead.
    RequiresRecompile,
    /// The delta was grounded against a different plan state (other identity
    /// or other version) than the adopting plan's: re-ground it against the
    /// current state.
    StaleDelta,
}

impl fmt::Display for PlanDeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanDeltaError::NoSuchMaster(i) => write!(f, "no master relation at index {i}"),
            PlanDeltaError::Schema(e) => write!(f, "appended master row rejected: {e}"),
            PlanDeltaError::RequiresRecompile => write!(
                f,
                "master deletions are not monotone; recompile the plan instead"
            ),
            PlanDeltaError::StaleDelta => write!(
                f,
                "delta was grounded against a different plan state; re-ground it"
            ),
        }
    }
}

impl std::error::Error for PlanDeltaError {}

/// A schema-resolved, validated, master-grounded chase program, ready to be
/// evaluated against any number of entity instances.
///
/// A plan is **append-evolvable**: [`ChasePlan::apply_master_delta`] extends
/// the master data (and its pre-grounded steps) in place, bumping the plan's
/// [`PlanStamp`] version.  A plan is meant to be mutated by a single owner;
/// `Clone` copies the stamp, so divergently mutated clones must not be mixed.
#[derive(Debug, Clone)]
pub struct ChasePlan {
    schema: SchemaRef,
    rules: Arc<RuleSet>,
    masters: Arc<Vec<MasterRelation>>,
    /// Pre-grounded form-(2) steps (entity-independent), segmented: one block
    /// per compilation/adopted delta.  Blocks are immutable and `Arc`-shared,
    /// so plan clones that adopt the same [`GroundedMasterDelta`] share its
    /// step storage instead of each owning a copy.
    master_segments: Vec<Arc<Vec<GroundStep>>>,
    /// Total step count across [`ChasePlan::master_segments`] (cached so
    /// flattened index ranges are cheap to hand out).
    master_step_len: usize,
    master_tuples_considered: usize,
    master_folded_away: usize,
    /// Dedup keys of the pre-grounded steps, kept so master-delta appends can
    /// keep folding duplicates exactly like compilation did.
    master_seen: HashSet<(StepAction, Vec<PendingPred>)>,
    /// Canonical string allocations of the master data and rule constants.
    interner: Interner,
    /// Identity + delta version (see [`PlanStamp`]).
    stamp: PlanStamp,
}

impl ChasePlan {
    /// Compile a plan: validate the rules, intern master data and rule
    /// constants, and pre-ground the form-(2) rules.
    pub fn compile(
        schema: SchemaRef,
        mut rules: RuleSet,
        mut masters: Vec<MasterRelation>,
    ) -> Result<Self, SpecificationError> {
        let master_arities: Vec<usize> = masters.iter().map(|m| m.schema().arity()).collect();
        rules
            .validate(&schema, &master_arities)
            .map_err(SpecificationError::Rule)?;

        let mut interner = Interner::new();
        for master in &mut masters {
            interner.intern_master(master);
        }
        rules.intern_constants(&mut interner);

        let mut grounding = Grounding::default();
        let mut seen: HashSet<(StepAction, Vec<PendingPred>)> = HashSet::new();
        ground_master_rules(&rules, &masters, &mut grounding, &mut seen);

        let master_step_len = grounding.steps.len();
        Ok(ChasePlan {
            schema,
            rules: Arc::new(rules),
            masters: Arc::new(masters),
            master_segments: vec![Arc::new(grounding.steps)],
            master_step_len,
            master_tuples_considered: grounding.master_tuples_considered,
            master_folded_away: grounding.folded_away,
            master_seen: seen,
            interner,
            stamp: PlanStamp {
                plan: NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed),
                version: 0,
            },
        })
    }

    /// Compile a plan from an existing specification, sharing its rule set and
    /// master data (cloned once if they are shared with other owners, never
    /// per entity).
    pub fn from_spec(spec: &Specification) -> Result<Self, SpecificationError> {
        ChasePlan::compile(
            spec.ie.schema().clone(),
            (*spec.rules).clone(),
            (*spec.masters).clone(),
        )
    }

    /// The entity schema the plan was compiled against.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The compiled rule set.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.rules
    }

    /// The compiled master relations.
    pub fn masters(&self) -> &Arc<Vec<MasterRelation>> {
        &self.masters
    }

    /// Number of pre-grounded form-(2) steps.  The flattened index ranges
    /// returned by [`ChasePlan::apply_master_delta`] count against this.
    pub fn master_step_count(&self) -> usize {
        self.master_step_len
    }

    /// The plan's current identity + delta version.
    pub fn stamp(&self) -> PlanStamp {
        self.stamp
    }

    /// True iff `checkpoint` was captured through
    /// [`ChasePlan::checkpoint_with`] against this exact plan state (same
    /// identity, same delta version).  Checkpoints captured outside a plan
    /// (e.g. [`ChaseCheckpoint::capture`]) never validate.
    pub fn checkpoint_is_current(&self, checkpoint: &ChaseCheckpoint) -> bool {
        checkpoint.plan_stamp() == Some(self.stamp)
    }

    /// Apply a **monotone** master-data update in place: append the update's
    /// rows to the targeted master relation (interned against the plan's
    /// canonical strings) and pre-ground the form-(2) steps those new tuples
    /// contribute, with the same duplicate folding as compilation.  Nothing
    /// already compiled moves: existing ground steps keep their indices, so
    /// every specification and grounding derived from the plan *before* the
    /// delta stays a valid prefix view; the plan's [`PlanStamp`] version is
    /// bumped so downstream caches know to revalidate.
    ///
    /// Deletions (and rule changes, which never go through this API) are not
    /// monotone — steps would have to be *removed* — and are rejected with
    /// [`PlanDeltaError::RequiresRecompile`]; the caller recompiles via
    /// [`ChasePlan::compile`] over the updated inputs, obtaining a fresh plan
    /// identity that stale checkpoints cannot validate against.
    pub fn apply_master_delta(
        &mut self,
        update: &MasterUpdate,
    ) -> Result<MasterDeltaApplied, PlanDeltaError> {
        let delta = self.ground_master_delta(update)?;
        self.adopt_master_delta(&delta)
    }

    /// The grounding half of [`ChasePlan::apply_master_delta`]: validate the
    /// update, intern its rows and pre-ground the form-(2) steps they
    /// contribute — **without mutating the plan's logical state**.  The
    /// returned [`GroundedMasterDelta`] can be adopted by this plan *and* by
    /// any clone still at the same [`PlanStamp`], so a sharded owner grounds
    /// a master append exactly once and broadcasts the shared step block.
    ///
    /// `&mut self` only because the appended strings are registered with the
    /// plan's interner; nothing observable by the chase (masters, steps,
    /// stamp) changes until adoption.
    pub fn ground_master_delta(
        &mut self,
        update: &MasterUpdate,
    ) -> Result<GroundedMasterDelta, PlanDeltaError> {
        if !update.deletes.is_empty() {
            return Err(PlanDeltaError::RequiresRecompile);
        }
        if update.master >= self.masters.len() {
            return Err(PlanDeltaError::NoSuchMaster(update.master));
        }
        // validate everything before grounding (deltas apply atomically)
        let master_schema = self.masters[update.master].schema().clone();
        for row in &update.appends {
            master_schema
                .validate_row(row)
                .map_err(PlanDeltaError::Schema)?;
        }

        // a delta relation holding only the new tuples, so grounding ranges
        // over exactly the appended rows (empty stand-ins keep the rule →
        // master_index addressing intact); rows are interned here so every
        // adopting clone ends up sharing the same canonical allocations
        let mut delta_masters: Vec<MasterRelation> = self
            .masters
            .iter()
            .map(|m| MasterRelation::new(m.schema().clone()))
            .collect();
        let mut rows = Vec::with_capacity(update.appends.len());
        for row in &update.appends {
            let mut row = row.clone();
            for value in &mut row {
                self.interner.intern_value(value);
            }
            delta_masters[update.master]
                .push_row(row.clone())
                .expect("validated above");
            rows.push(row);
        }

        // ground against a *clone* of the dedup keys: duplicates fold exactly
        // like compilation, but the plan's own set stays untouched until the
        // delta is adopted
        let mut seen = self.master_seen.clone();
        let mut grounding = Grounding::default();
        ground_master_rules(&self.rules, &delta_masters, &mut grounding, &mut seen);
        Ok(GroundedMasterDelta {
            base: self.stamp,
            master: update.master,
            rows,
            steps: Arc::new(grounding.steps),
            tuples_considered: grounding.master_tuples_considered,
            folded_away: grounding.folded_away,
        })
    }

    /// The adoption half of [`ChasePlan::apply_master_delta`]: append the
    /// delta's pre-validated rows and its shared step block to this plan and
    /// bump the stamp version.  Per-adopter work is O(|Δ| rows + |new steps|)
    /// reference pushes — the `|Σ2| × |Δ|` grounding loop already ran, once,
    /// in [`ChasePlan::ground_master_delta`].
    ///
    /// The adopting plan must be at exactly the delta's base stamp (same
    /// identity, same version); anything else is rejected with
    /// [`PlanDeltaError::StaleDelta`] — folding decisions and step indices
    /// are only valid against the state the delta was grounded on.
    pub fn adopt_master_delta(
        &mut self,
        delta: &GroundedMasterDelta,
    ) -> Result<MasterDeltaApplied, PlanDeltaError> {
        if delta.base != self.stamp {
            return Err(PlanDeltaError::StaleDelta);
        }
        let masters = Arc::make_mut(&mut self.masters);
        for row in &delta.rows {
            let mut row = row.clone();
            for value in &mut row {
                // registers the delta's canonical allocations with this
                // clone's interner: a no-op on the grounding plan, and on
                // sibling shards it adopts the *same* `Arc`s, so pointer
                // equality keeps firing across shard boundaries
                self.interner.intern_value(value);
            }
            masters[delta.master]
                .push_row(row)
                .expect("validated when the delta was grounded");
        }
        // re-derive the dedup keys from the adopted steps (the exact key
        // construction `ground_master_rule` folds on), so a later delta
        // grounded against the adopted state folds correctly
        for step in delta.steps.iter() {
            self.master_seen
                .insert((step.action.clone(), step.pending.clone()));
        }
        let first_new = self.master_step_len;
        if !delta.steps.is_empty() {
            self.master_step_len += delta.steps.len();
            self.master_segments.push(Arc::clone(&delta.steps));
        }
        self.master_tuples_considered += delta.tuples_considered;
        self.master_folded_away += delta.folded_away;
        self.stamp.version += 1;
        Ok(MasterDeltaApplied {
            stamp: self.stamp,
            new_steps: first_new..self.master_step_len,
            appended: delta.rows.len(),
        })
    }

    /// A copy of the plan's interner, seeded with every master-data and
    /// rule-constant string.  Interning entity instances through it makes the
    /// pointer-equality fast path fire across entity and master values.
    pub fn fork_interner(&self) -> Interner {
        self.interner.clone()
    }

    /// Build the (cheap, `Arc`-sharing) specification of one entity.
    pub fn specification(&self, ie: EntityInstance) -> Specification {
        Specification::shared(ie, self.rules.clone(), self.masters.clone())
    }

    /// Ground the plan against one entity instance into a fresh [`Grounding`]
    /// (the pre-grounded master steps are appended to the entity's own form-(1)
    /// steps).
    pub fn instantiate(&self, ie: &EntityInstance) -> Grounding {
        let orders = AccuracyOrders::new(ie);
        let mut out = Grounding::default();
        let mut seen = HashSet::new();
        self.instantiate_into(ie, &orders, &mut out, &mut seen);
        out
    }

    fn instantiate_into(
        &self,
        ie: &EntityInstance,
        orders: &AccuracyOrders,
        out: &mut Grounding,
        seen: &mut HashSet<(StepAction, Vec<PendingPred>)>,
    ) {
        debug_assert_eq!(
            ie.schema().arity(),
            self.schema.arity(),
            "entity instance does not conform to the plan's schema"
        );
        out.clear();
        seen.clear();
        ground_tuple_rules(&self.rules, ie, orders, out, seen);
        for segment in &self.master_segments {
            out.steps.extend(segment.iter().cloned());
        }
        out.master_tuples_considered += self.master_tuples_considered;
        out.folded_away += self.master_folded_away;
    }

    /// Run `IsCR` for one entity with a fresh scratch (convenience wrapper).
    pub fn is_cr(&self, ie: &EntityInstance) -> ChaseRun {
        self.is_cr_with(ie, &mut ChaseScratch::new())
    }

    /// Run `IsCR` for one entity, reusing `scratch`'s allocations.
    pub fn is_cr_with(&self, ie: &EntityInstance, scratch: &mut ChaseScratch) -> ChaseRun {
        let empty = TargetTuple::empty(self.schema.arity());
        self.chase_with(ie, &empty, scratch)
    }

    /// Run the chase for one entity with an explicit initial target template,
    /// reusing `scratch`'s allocations.  This is the batch engine's hot path.
    pub fn chase_with(
        &self,
        ie: &EntityInstance,
        initial_target: &TargetTuple,
        scratch: &mut ChaseScratch,
    ) -> ChaseRun {
        let orders = AccuracyOrders::new(ie);
        self.instantiate_into(ie, &orders, &mut scratch.grounding, &mut scratch.seen);
        // hand the (still empty) orders over instead of rebuilding them
        chase_parts(
            ie,
            &self.rules,
            Some(orders),
            &scratch.grounding,
            initial_target,
            Some(&mut scratch.index),
        )
    }

    /// Run `IsCR` for one entity **and** freeze the terminal state as a
    /// [`ChaseCheckpoint`]: one chase serves both the deduction and any
    /// subsequent candidate checks (the batch engine's suggestion path).
    ///
    /// The worker's index is moved into the run (its allocations are reused)
    /// and ends up inside the checkpoint; when the entity turns out to need
    /// no candidate checks, hand it back with
    /// [`ChaseScratch::restore_index`] + [`ChaseCheckpoint::into_index`].
    pub fn checkpoint_with(
        &self,
        ie: &EntityInstance,
        scratch: &mut ChaseScratch,
    ) -> CheckpointRun {
        let orders = AccuracyOrders::new(ie);
        self.instantiate_into(ie, &orders, &mut scratch.grounding, &mut scratch.seen);
        let mut run = ChaseCheckpoint::capture_with_index(
            ie,
            &self.rules,
            &scratch.grounding,
            orders,
            &TargetTuple::empty(self.schema.arity()),
            std::mem::take(&mut scratch.index),
        );
        if let CheckpointOutcome::Ready(checkpoint) = &mut run.outcome {
            // stamp the plan state the checkpoint is valid for, so caches can
            // revalidate it after master deltas / recompiles
            checkpoint.set_plan_stamp(self.stamp);
        }
        run
    }

    /// Re-run the chase over the grounding left in `scratch` by the last
    /// [`ChasePlan::chase_with`] / [`ChasePlan::is_cr_with`] call for the same
    /// entity — used to `check` candidate targets without re-grounding.
    pub fn rechase_with(
        &self,
        ie: &EntityInstance,
        initial_target: &TargetTuple,
        scratch: &mut ChaseScratch,
    ) -> ChaseRun {
        chase_parts(
            ie,
            &self.rules,
            None,
            &scratch.grounding,
            initial_target,
            Some(&mut scratch.index),
        )
    }
}

/// Reusable per-worker buffers for plan evaluation: the grounding, the step
/// dedup set, the event index and the checkpointed-check scratch.  One
/// scratch per worker thread; never shared.
#[derive(Debug, Default)]
pub struct ChaseScratch {
    grounding: Grounding,
    seen: HashSet<(StepAction, Vec<PendingPred>)>,
    index: ChaseIndex,
    check: CheckScratch,
}

impl ChaseScratch {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        ChaseScratch::default()
    }

    /// The grounding left behind by the most recent plan evaluation (used by
    /// suggestion search to reuse `Γ` for candidate checks).
    pub fn grounding(&self) -> &Grounding {
        &self.grounding
    }

    /// The worker's resumed-check scratch (see
    /// [`crate::chase::checkpoint::CheckScratch`]).
    pub fn check_scratch(&mut self) -> &mut CheckScratch {
        &mut self.check
    }

    /// Split borrow: the cached grounding plus the check scratch, for callers
    /// that prepare a candidate search over the grounding *and* run
    /// checkpointed checks with the same worker scratch (the batch engine's
    /// suggestion path).
    pub fn grounding_and_check(&mut self) -> (&Grounding, &mut CheckScratch) {
        (&self.grounding, &mut self.check)
    }

    /// Hand back an index previously moved out by
    /// [`ChasePlan::checkpoint_with`] (via [`ChaseCheckpoint::into_index`]),
    /// so its allocations keep being reused across the worker's entities.
    pub fn restore_index(&mut self, index: ChaseIndex) {
        self.index = index;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::iscr::is_cr;
    use crate::rules::{MasterPremise, MasterRule, Predicate, RuleSet, TupleRule};
    use relacc_model::{AttrId, CmpOp, DataType, Schema, Value};

    fn schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .build()
    }

    fn rules(s: &SchemaRef, master_schema: &SchemaRef) -> RuleSet {
        RuleSet::from_rules([
            crate::rules::AccuracyRule::from(TupleRule::new(
                "cur",
                vec![Predicate::cmp_attrs(s.expect_attr("rnds"), CmpOp::Lt)],
                s.expect_attr("rnds"),
            )),
            crate::rules::AccuracyRule::from(MasterRule::new(
                "m",
                vec![MasterPremise::TargetEqMaster(
                    s.expect_attr("name"),
                    master_schema.expect_attr("name"),
                )],
                vec![(s.expect_attr("team"), master_schema.expect_attr("team"))],
            )),
        ])
    }

    fn master(master_schema: &SchemaRef) -> MasterRelation {
        MasterRelation::from_rows(
            master_schema.clone(),
            vec![vec![Value::text("mj"), Value::text("Bulls")]],
        )
        .unwrap()
    }

    fn entity(s: &SchemaRef, name: &str, rnds: &[i64]) -> EntityInstance {
        EntityInstance::from_rows(
            s.clone(),
            rnds.iter()
                .map(|r| vec![Value::text(name), Value::Int(*r), Value::Null])
                .collect(),
        )
        .unwrap()
    }

    fn master_schema() -> SchemaRef {
        Schema::builder("nba")
            .attr("name", DataType::Text)
            .attr("team", DataType::Text)
            .build()
    }

    #[test]
    fn plan_matches_fresh_specifications_across_entities() {
        let s = schema();
        let ms = master_schema();
        let plan = ChasePlan::compile(s.clone(), rules(&s, &ms), vec![master(&ms)]).unwrap();
        assert_eq!(plan.master_step_count(), 1);
        let mut scratch = ChaseScratch::new();
        for (name, rnds) in [("mj", vec![16, 27, 1]), ("sp", vec![3]), ("mj", vec![8, 2])] {
            let ie = entity(&s, name, &rnds);
            // reference: the per-entity recompile path
            let spec = Specification::new(ie.clone(), rules(&s, &ms)).with_master(master(&ms));
            let fresh = is_cr(&spec);
            let planned = plan.is_cr_with(&ie, &mut scratch);
            assert_eq!(
                fresh.outcome.is_church_rosser(),
                planned.outcome.is_church_rosser()
            );
            assert_eq!(fresh.outcome.target(), planned.outcome.target());
            assert_eq!(fresh.stats.steps_applied, planned.stats.steps_applied);
            assert_eq!(fresh.stats.ground_steps, planned.stats.ground_steps);
        }
        // the "mj" entities join master data and get the team filled in
        let ie = entity(&s, "mj", &[16, 27]);
        let run = plan.is_cr_with(&ie, &mut scratch);
        let te = run.outcome.target().unwrap();
        assert_eq!(te.value(AttrId(2)), &Value::text("Bulls"));
        assert_eq!(te.value(AttrId(1)), &Value::Int(27));
    }

    #[test]
    fn invalid_rules_fail_at_compile_time_not_per_entity() {
        let s = schema();
        let bad = RuleSet::from_rules([TupleRule::new("bad", vec![], AttrId(17))]);
        assert!(ChasePlan::compile(s, bad, vec![]).is_err());
    }

    #[test]
    fn from_spec_shares_rules_and_masters() {
        let s = schema();
        let ms = master_schema();
        let spec =
            Specification::new(entity(&s, "mj", &[1, 2]), rules(&s, &ms)).with_master(master(&ms));
        let plan = ChasePlan::from_spec(&spec).unwrap();
        let run_spec = is_cr(&spec);
        let run_plan = plan.is_cr(&spec.ie);
        assert_eq!(run_spec.outcome.target(), run_plan.outcome.target());
        // cheap per-entity specifications share the compiled data
        let spec2 = plan.specification(entity(&s, "sp", &[5]));
        assert!(Arc::ptr_eq(&spec2.rules, plan.rules()));
        assert!(Arc::ptr_eq(&spec2.masters, plan.masters()));
    }

    #[test]
    fn rechase_reuses_the_grounding_for_candidate_checks() {
        let s = schema();
        let ms = master_schema();
        let plan = ChasePlan::compile(s.clone(), rules(&s, &ms), vec![master(&ms)]).unwrap();
        let ie = entity(&s, "mj", &[16, 27]);
        let mut scratch = ChaseScratch::new();
        let deduced = plan
            .is_cr_with(&ie, &mut scratch)
            .outcome
            .target()
            .unwrap()
            .clone();
        assert!(deduced.is_complete());
        // checking the deduced target against the cached grounding succeeds
        let check = plan.rechase_with(&ie, &deduced, &mut scratch);
        assert_eq!(check.outcome.target(), Some(&deduced));
        // a contradicting candidate is rejected
        let mut bad = deduced.clone();
        bad.set(AttrId(2), Value::text("Knicks"));
        let check = plan.rechase_with(&ie, &bad, &mut scratch);
        assert!(!check.outcome.is_church_rosser());
    }

    #[test]
    fn master_delta_appends_steps_in_place_and_bumps_the_version() {
        let s = schema();
        let ms = master_schema();
        let mut plan = ChasePlan::compile(s.clone(), rules(&s, &ms), vec![master(&ms)]).unwrap();
        let stamp0 = plan.stamp();
        assert_eq!(stamp0.version, 0);
        assert_eq!(plan.master_step_count(), 1);

        // before the delta, the "sp" entity has no master row: team stays open
        let ie = entity(&s, "sp", &[3, 9]);
        let mut scratch = ChaseScratch::new();
        let run = plan.is_cr_with(&ie, &mut scratch);
        assert!(run.outcome.target().unwrap().is_null(AttrId(2)));

        let applied = plan
            .apply_master_delta(&MasterUpdate::append(
                0,
                vec![vec![Value::text("sp"), Value::text("Blazers")]],
            ))
            .unwrap();
        assert_eq!(applied.appended, 1);
        assert_eq!(applied.stamp.plan, stamp0.plan);
        assert_eq!(applied.stamp.version, 1);
        assert_eq!(applied.new_steps, 1..2);
        assert_eq!(plan.master_step_count(), 2);
        assert_eq!(plan.masters()[0].len(), 2);

        // the delta-extended plan now deduces the team, and matches a fresh
        // compile over the full master set exactly
        let run = plan.is_cr_with(&ie, &mut scratch);
        assert_eq!(
            run.outcome.target().unwrap().value(AttrId(2)),
            &Value::text("Blazers")
        );
        let mut full_master = master(&ms);
        full_master
            .push_row(vec![Value::text("sp"), Value::text("Blazers")])
            .unwrap();
        let fresh = ChasePlan::compile(s.clone(), rules(&s, &ms), vec![full_master]).unwrap();
        let fresh_run = fresh.is_cr_with(&ie, &mut scratch);
        assert_eq!(fresh_run.outcome.target(), run.outcome.target());
        assert_eq!(fresh_run.stats.ground_steps, run.stats.ground_steps);
        // fresh compile = fresh identity: versions are not comparable across
        assert_ne!(fresh.stamp().plan, plan.stamp().plan);
    }

    #[test]
    fn master_delta_folds_duplicate_appends_like_compilation() {
        let s = schema();
        let ms = master_schema();
        let mut plan = ChasePlan::compile(s.clone(), rules(&s, &ms), vec![master(&ms)]).unwrap();
        // appending the exact row the plan already grounded adds no step
        let applied = plan
            .apply_master_delta(&MasterUpdate::append(
                0,
                vec![vec![Value::text("mj"), Value::text("Bulls")]],
            ))
            .unwrap();
        assert!(applied.new_steps.is_empty());
        assert_eq!(plan.master_step_count(), 1);
        assert_eq!(applied.stamp.version, 1);
    }

    /// The sharded broadcast contract: ground a delta once, adopt it on any
    /// number of plan clones — every adopter matches the single-owner
    /// `apply_master_delta` path exactly and shares the delta's step block.
    #[test]
    fn one_grounding_serves_every_plan_clone() {
        let s = schema();
        let ms = master_schema();
        let mut owner = ChasePlan::compile(s.clone(), rules(&s, &ms), vec![master(&ms)]).unwrap();
        let mut clones = vec![owner.clone(), owner.clone()];

        let update = MasterUpdate::append(0, vec![vec![Value::text("sp"), Value::text("Blazers")]]);
        let delta = owner.ground_master_delta(&update).unwrap();
        assert_eq!(delta.appended(), 1);
        assert_eq!(delta.steps().len(), 1);
        // grounding alone mutates nothing observable
        assert_eq!(owner.stamp().version, 0);
        assert_eq!(owner.master_step_count(), 1);
        assert_eq!(owner.masters()[0].len(), 1);

        let applied = owner.adopt_master_delta(&delta).unwrap();
        for clone in &mut clones {
            assert_eq!(clone.adopt_master_delta(&delta).unwrap(), applied);
        }
        assert_eq!(applied.new_steps, 1..2);
        assert_eq!(applied.stamp.version, 1);

        // every adopter deduces like a single-owner apply_master_delta plan
        let mut reference =
            ChasePlan::compile(s.clone(), rules(&s, &ms), vec![master(&ms)]).unwrap();
        reference.apply_master_delta(&update).unwrap();
        let ie = entity(&s, "sp", &[3, 9]);
        let mut scratch = ChaseScratch::new();
        let want = reference.is_cr_with(&ie, &mut scratch);
        for plan in std::iter::once(&owner).chain(clones.iter()) {
            assert_eq!(plan.master_step_count(), 2);
            assert_eq!(plan.masters()[0].len(), 2);
            let run = plan.is_cr_with(&ie, &mut scratch);
            assert_eq!(run.outcome.target(), want.outcome.target());
            assert_eq!(run.stats.ground_steps, want.stats.ground_steps);
        }

        // a second delta grounded against the adopted state folds duplicates
        // of *adopted* steps, proving the dedup keys were re-derived
        let dup = owner.ground_master_delta(&update).unwrap();
        assert!(dup.steps().is_empty());

        // adopting the same (version-0-based) delta twice is stale, as is
        // adopting against a foreign plan identity
        assert!(matches!(
            owner.adopt_master_delta(&delta),
            Err(PlanDeltaError::StaleDelta)
        ));
        let mut foreign = ChasePlan::compile(s.clone(), rules(&s, &ms), vec![master(&ms)]).unwrap();
        assert!(matches!(
            foreign.adopt_master_delta(&delta),
            Err(PlanDeltaError::StaleDelta)
        ));
    }

    #[test]
    fn non_monotone_deltas_are_rejected() {
        let s = schema();
        let ms = master_schema();
        let mut plan = ChasePlan::compile(s.clone(), rules(&s, &ms), vec![master(&ms)]).unwrap();
        let mut deletion = MasterUpdate::append(0, vec![]);
        deletion.deletes.push(0);
        assert!(matches!(
            plan.apply_master_delta(&deletion),
            Err(PlanDeltaError::RequiresRecompile)
        ));
        assert!(matches!(
            plan.apply_master_delta(&MasterUpdate::append(7, vec![])),
            Err(PlanDeltaError::NoSuchMaster(7))
        ));
        // a schema-invalid row leaves the plan untouched
        let before = plan.master_step_count();
        assert!(matches!(
            plan.apply_master_delta(&MasterUpdate::append(0, vec![vec![Value::Int(1)]])),
            Err(PlanDeltaError::Schema(_))
        ));
        assert_eq!(plan.master_step_count(), before);
        assert_eq!(plan.stamp().version, 0);
    }

    #[test]
    fn checkpoints_validate_against_the_stamping_plan_state() {
        let s = schema();
        let ms = master_schema();
        let mut plan = ChasePlan::compile(s.clone(), rules(&s, &ms), vec![master(&ms)]).unwrap();
        let ie = entity(&s, "mj", &[16, 27]);
        let mut scratch = ChaseScratch::new();
        let run = plan.checkpoint_with(&ie, &mut scratch);
        let super::CheckpointOutcome::Ready(checkpoint) = run.outcome else {
            panic!("entity is Church-Rosser");
        };
        assert!(plan.checkpoint_is_current(&checkpoint));

        // a master delta invalidates previously captured checkpoints
        plan.apply_master_delta(&MasterUpdate::append(
            0,
            vec![vec![Value::text("sp"), Value::text("Blazers")]],
        ))
        .unwrap();
        assert!(!plan.checkpoint_is_current(&checkpoint));
        scratch.restore_index(checkpoint.into_index());

        // a fresh capture against the evolved plan validates again
        let run = plan.checkpoint_with(&ie, &mut scratch);
        let super::CheckpointOutcome::Ready(checkpoint) = run.outcome else {
            panic!("entity is Church-Rosser");
        };
        assert!(plan.checkpoint_is_current(&checkpoint));

        // plan-less captures never validate
        let spec = plan.specification(ie.clone());
        let orders = AccuracyOrders::new(&spec.ie);
        let grounding = crate::chase::ground::ground(&spec, &orders);
        let run = ChaseCheckpoint::capture(
            &spec.ie,
            &spec.rules,
            &grounding,
            &TargetTuple::empty(s.arity()),
        );
        let super::CheckpointOutcome::Ready(planless) = run.outcome else {
            panic!("entity is Church-Rosser");
        };
        assert_eq!(planless.plan_stamp(), None);
        assert!(!plan.checkpoint_is_current(&planless));
    }

    #[test]
    fn interner_canonicalizes_entity_text_against_master_data() {
        let s = schema();
        let ms = master_schema();
        let plan = ChasePlan::compile(s.clone(), rules(&s, &ms), vec![master(&ms)]).unwrap();
        let mut interner = plan.fork_interner();
        assert!(!interner.is_empty());
        let mut ie = entity(&s, "mj", &[1]);
        interner.intern_instance(&mut ie);
        // the entity's "mj" now shares the master tuple's allocation
        let master_name = plan.masters()[0].tuple(0).value(AttrId(0));
        let entity_name = ie.value(relacc_model::TupleId(0), AttrId(0));
        match (master_name, entity_name) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("expected text values"),
        }
    }
}
