//! Evaluation metrics used in Section 7.
//!
//! * precision / recall / F-measure over a predicted set vs. a ground-truth set
//!   (Table 4's `closed?` restaurants);
//! * attribute accuracy: the fraction of attributes of a (possibly incomplete)
//!   target tuple that carry the true value (Fig. 6(e));
//! * exact-match rate over entity collections (Fig. 6(a), Exp-2, Exp-5-CFP).

use relacc_model::TargetTuple;
use std::collections::HashSet;
use std::hash::Hash;

/// Precision, recall and F1 of a predicted set against a ground-truth set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// |predicted ∩ truth| / |predicted| (1.0 when nothing is predicted).
    pub precision: f64,
    /// |predicted ∩ truth| / |truth| (1.0 when the truth set is empty).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub f1: f64,
}

/// Compute precision / recall / F1 for sets of hashable items.
pub fn precision_recall<T: Eq + Hash>(predicted: &[T], truth: &[T]) -> PrecisionRecall {
    let predicted_set: HashSet<&T> = predicted.iter().collect();
    let truth_set: HashSet<&T> = truth.iter().collect();
    let hits = predicted_set.intersection(&truth_set).count();
    let precision = if predicted_set.is_empty() {
        1.0
    } else {
        hits as f64 / predicted_set.len() as f64
    };
    let recall = if truth_set.is_empty() {
        1.0
    } else {
        hits as f64 / truth_set.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrecisionRecall {
        precision,
        recall,
        f1,
    }
}

/// Fraction of attributes on which `deduced` carries the true (non-null) value.
///
/// Null attributes of `deduced` count as incorrect; attributes whose truth is
/// null are skipped (they cannot be judged).
pub fn attribute_accuracy(deduced: &TargetTuple, truth: &TargetTuple) -> f64 {
    let mut judged = 0usize;
    let mut correct = 0usize;
    for i in 0..truth.arity() {
        let t = truth.value(relacc_model::AttrId(i));
        if t.is_null() {
            continue;
        }
        judged += 1;
        let d = deduced.value(relacc_model::AttrId(i));
        if !d.is_null() && d.same(t) {
            correct += 1;
        }
    }
    if judged == 0 {
        1.0
    } else {
        correct as f64 / judged as f64
    }
}

/// Fraction of pairs where the prediction equals the truth exactly on every
/// judged (non-null-truth) attribute.
pub fn exact_match_rate(pairs: &[(TargetTuple, TargetTuple)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let hits = pairs
        .iter()
        .filter(|(pred, truth)| attribute_accuracy(pred, truth) == 1.0)
        .count();
    hits as f64 / pairs.len() as f64
}

/// Mean of a slice of f64 (0.0 for an empty slice); small helper used by the
/// experiment harness when aggregating per-entity measurements.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_model::Value;

    #[test]
    fn precision_recall_basics() {
        let pr = precision_recall(&[1, 2, 3, 4], &[2, 3, 5]);
        assert!((pr.precision - 0.5).abs() < 1e-12);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.f1 - (2.0 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0))).abs() < 1e-12);

        let empty_pred = precision_recall::<i32>(&[], &[1]);
        assert_eq!(empty_pred.precision, 1.0);
        assert_eq!(empty_pred.recall, 0.0);
        assert_eq!(empty_pred.f1, 0.0);

        let perfect = precision_recall(&[1, 2], &[1, 2]);
        assert_eq!(perfect.f1, 1.0);
    }

    #[test]
    fn attribute_accuracy_handles_nulls() {
        let truth = TargetTuple::from_values(vec![
            Value::Int(1),
            Value::text("x"),
            Value::Null,
            Value::Int(9),
        ]);
        let deduced = TargetTuple::from_values(vec![
            Value::Int(1),
            Value::Null,
            Value::text("ignored"),
            Value::Int(8),
        ]);
        // judged attrs: 0 (hit), 1 (miss: null), 3 (miss: wrong); attr 2 skipped
        assert!((attribute_accuracy(&deduced, &truth) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(attribute_accuracy(&truth, &truth), 1.0);
    }

    #[test]
    fn exact_match_and_mean() {
        let truth = TargetTuple::from_values(vec![Value::Int(1), Value::text("x")]);
        let right = truth.clone();
        let wrong = TargetTuple::from_values(vec![Value::Int(1), Value::text("y")]);
        let rate = exact_match_rate(&[(right, truth.clone()), (wrong, truth)]);
        assert!((rate - 0.5).abs() < 1e-12);
        assert_eq!(exact_match_rate(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }
}
