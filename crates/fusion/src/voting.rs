//! The `voting` baseline: pick, for every attribute, the most frequent non-null
//! value, ignoring accuracy rules entirely.
//!
//! The paper uses voting both as a stand-alone truth-discovery baseline
//! (Exp-2, Exp-5) and as the default way to derive preference-model weights for
//! `TopKCT` ("TopKCT (preference derived by voting)" in Table 4).

use crate::observations::{ObjectId, SourceObservations};
use relacc_model::{AttrId, EntityInstance, TargetTuple, Value};

/// Majority vote over the tuples of an entity instance: for each attribute the
/// most frequent non-null value (ties broken by first appearance in the
/// instance, making the result deterministic).
pub fn voting_target(ie: &EntityInstance) -> TargetTuple {
    let arity = ie.schema().arity();
    let mut values = Vec::with_capacity(arity);
    for i in 0..arity {
        let a = AttrId(i);
        let counts = ie.value_counts(a);
        let mut best: Option<(Value, usize)> = None;
        for v in ie.active_domain(a) {
            let c = counts.get(&v).copied().unwrap_or_else(|| {
                counts
                    .iter()
                    .find(|(k, _)| k.same(&v))
                    .map(|(_, c)| *c)
                    .unwrap_or(0)
            });
            match &best {
                Some((_, bc)) if *bc >= c => {}
                _ => best = Some((v, c)),
            }
        }
        values.push(best.map(|(v, _)| v).unwrap_or(Value::Null));
    }
    TargetTuple::from_values(values)
}

/// Majority vote over multi-source claims: for every object the value claimed
/// by the largest number of sources (ties broken by first claimant).
pub fn voting_over_sources(obs: &SourceObservations) -> Vec<(ObjectId, Option<Value>)> {
    (0..obs.object_count())
        .map(|o| {
            let object = ObjectId(o);
            let votes = obs.value_votes(object);
            let winner = votes
                .iter()
                .max_by_key(|(_, count)| *count)
                .map(|(v, _)| v.clone());
            (object, winner)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observations::SourceId;
    use relacc_model::{DataType, Schema};

    #[test]
    fn entity_voting_picks_modes_and_keeps_ties_deterministic() {
        let schema = Schema::builder("r")
            .attr("team", DataType::Text)
            .attr("pts", DataType::Int)
            .build();
        let ie = EntityInstance::from_rows(
            schema,
            vec![
                vec![Value::text("bulls"), Value::Int(1)],
                vec![Value::text("bulls"), Value::Int(2)],
                vec![Value::text("barons"), Value::Null],
                vec![Value::Null, Value::Int(2)],
            ],
        )
        .unwrap();
        let t = voting_target(&ie);
        assert_eq!(t.value(AttrId(0)), &Value::text("bulls"));
        assert_eq!(t.value(AttrId(1)), &Value::Int(2));
    }

    #[test]
    fn all_null_column_stays_null() {
        let schema = Schema::builder("r").attr("a", DataType::Int).build();
        let ie =
            EntityInstance::from_rows(schema, vec![vec![Value::Null], vec![Value::Null]]).unwrap();
        assert!(voting_target(&ie).is_null(AttrId(0)));
    }

    #[test]
    fn source_voting() {
        let mut obs = SourceObservations::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["r0".into(), "r1".into()],
        );
        obs.record(ObjectId(0), SourceId(0), Value::Bool(true));
        obs.record(ObjectId(0), SourceId(1), Value::Bool(false));
        obs.record(ObjectId(0), SourceId(2), Value::Bool(false));
        let result = voting_over_sources(&obs);
        assert_eq!(result[0].1, Some(Value::Bool(false)));
        assert_eq!(result[1].1, None);
    }
}
