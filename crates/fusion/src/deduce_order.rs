//! The `DeduceOrder` baseline (Fan, Geerts, Tang, Yu — ICDE 2013): conflict
//! resolution by reasoning about data *currency* and *consistency*.
//!
//! `DeduceOrder` uses two kinds of knowledge, both of which the paper shows can
//! be expressed as accuracy rules (Section 1, related work):
//!
//! * **currency constraints** — partial orders saying which tuple is more
//!   up-to-date on an attribute.  In this reproduction they are the form-(1)
//!   rules tagged `"currency"` in a rule set;
//! * **constant CFDs** — consistency patterns that force attribute values once
//!   their left-hand side is matched.
//!
//! The algorithm deduces the most *current* value per attribute (by chasing
//! with the currency rules only, under the assumption that data was once
//! correct, so the most current value is the true one) and then applies the
//! constant CFDs to fill in consequences.  Unlike the paper's full framework it
//! uses no master data, no other ARs, and no top-k search, which is why it
//! resolves far fewer attributes on workloads whose errors are not
//! currency-shaped (Exp-5).

use relacc_core::chase::is_cr;
use relacc_core::rules::ConstantCfd;
use relacc_core::{IsCrOutcome, RuleSet, Specification};
use relacc_model::{EntityInstance, TargetTuple};

/// The result of running `DeduceOrder` on one entity.
#[derive(Debug, Clone)]
pub struct DeduceOrderResult {
    /// The (possibly incomplete) resolved tuple.
    pub resolved: TargetTuple,
    /// Number of attributes filled by currency reasoning.
    pub from_currency: usize,
    /// Number of attributes filled by constant CFDs.
    pub from_cfds: usize,
}

/// Run `DeduceOrder` on an entity instance.
///
/// `rules` is the full rule set of the workload; only its form-(1) rules tagged
/// `"currency"` are used (mirroring the paper's methodology: "we extracted all
/// ARs relevant to data currency as currency constraints").  `cfds` are the
/// workload's constant CFDs.
pub fn deduce_order(
    ie: &EntityInstance,
    rules: &RuleSet,
    cfds: &[ConstantCfd],
) -> DeduceOrderResult {
    let currency_rules = rules.with_tag("currency").only_tuple_rules();
    let spec = Specification::new(ie.clone(), currency_rules);
    let mut resolved = match is_cr(&spec).outcome {
        IsCrOutcome::ChurchRosser(instance) => instance.target,
        // Conflicting currency constraints: fall back to the empty template
        // (DeduceOrder refuses to guess).
        IsCrOutcome::NotChurchRosser(_) => TargetTuple::empty(ie.schema().arity()),
    };
    let from_currency = resolved.filled_count();

    // Apply constant CFDs to a fixpoint: whenever every LHS attribute of a CFD
    // is resolved and matches the pattern, the RHS value is forced.
    let mut from_cfds = 0usize;
    loop {
        let mut changed = false;
        for cfd in cfds {
            let applies = cfd
                .conditions
                .iter()
                .all(|(a, c)| !resolved.is_null(*a) && resolved.value(*a).same(c));
            if !applies {
                continue;
            }
            let (attr, value) = &cfd.conclusion;
            if resolved.is_null(*attr) {
                resolved.set(*attr, value.clone());
                from_cfds += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    DeduceOrderResult {
        resolved,
        from_currency,
        from_cfds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::rules::{Predicate, TupleRule};
    use relacc_model::{CmpOp, DataType, Schema, Value};

    fn instance() -> EntityInstance {
        let schema = Schema::builder("r")
            .attr("snapshot", DataType::Int)
            .attr("team", DataType::Text)
            .attr("arena", DataType::Text)
            .build();
        EntityInstance::from_rows(
            schema,
            vec![
                vec![
                    Value::Int(1),
                    Value::text("Barons"),
                    Value::text("Regions Park"),
                ],
                vec![
                    Value::Int(2),
                    Value::text("Chicago Bulls"),
                    Value::text("Old Stadium"),
                ],
                vec![Value::Int(3), Value::text("Chicago Bulls"), Value::Null],
            ],
        )
        .unwrap()
    }

    fn rules(schema: &relacc_model::SchemaRef) -> RuleSet {
        RuleSet::from_rules([
            // currency: larger snapshot is more current, and team follows it
            TupleRule::new(
                "snap",
                vec![Predicate::cmp_attrs(
                    schema.expect_attr("snapshot"),
                    CmpOp::Lt,
                )],
                schema.expect_attr("snapshot"),
            )
            .with_tag("currency"),
            TupleRule::new(
                "team_follows",
                vec![Predicate::OrderLt {
                    attr: schema.expect_attr("snapshot"),
                }],
                schema.expect_attr("team"),
            )
            .with_tag("currency"),
            // a non-currency rule that must be ignored by DeduceOrder
            TupleRule::new(
                "other",
                vec![Predicate::cmp_attrs(schema.expect_attr("arena"), CmpOp::Eq)],
                schema.expect_attr("arena"),
            ),
        ])
    }

    #[test]
    fn currency_plus_cfds_resolve_values() {
        let ie = instance();
        let schema = ie.schema().clone();
        let cfds = vec![ConstantCfd::new(
            vec![(schema.expect_attr("team"), Value::text("Chicago Bulls"))],
            (schema.expect_attr("arena"), Value::text("United Center")),
        )];
        let result = deduce_order(&ie, &rules(&schema), &cfds);
        assert_eq!(
            result.resolved.value(schema.expect_attr("snapshot")),
            &Value::Int(3)
        );
        assert_eq!(
            result.resolved.value(schema.expect_attr("team")),
            &Value::text("Chicago Bulls")
        );
        assert_eq!(
            result.resolved.value(schema.expect_attr("arena")),
            &Value::text("United Center")
        );
        assert_eq!(result.from_currency, 2);
        assert_eq!(result.from_cfds, 1);
    }

    #[test]
    fn without_currency_rules_nothing_is_resolved() {
        let ie = instance();
        let schema = ie.schema().clone();
        let no_currency = RuleSet::from_rules([TupleRule::new(
            "other",
            vec![Predicate::cmp_attrs(schema.expect_attr("arena"), CmpOp::Eq)],
            schema.expect_attr("arena"),
        )]);
        let result = deduce_order(&ie, &no_currency, &[]);
        // only ϕ7-style reasoning applies inside the empty currency rule set:
        // no attribute dominates, so nothing is filled except attributes with a
        // single non-null distinct value (none here besides arena... which has
        // one non-null value and a null, so it is deduced by ϕ7 + λ)
        assert!(result.resolved.is_null(schema.expect_attr("team")));
        assert!(result.resolved.is_null(schema.expect_attr("snapshot")));
        assert_eq!(result.from_cfds, 0);
    }
}
