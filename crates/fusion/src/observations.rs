//! Multi-source observations: the input format of the truth-discovery
//! baselines (`voting`, `copyCEF`).
//!
//! The `Rest` workload of the paper (Dong et al.'s restaurant feed) consists of
//! snapshots of many web sources each claiming a value for each object (a
//! restaurant's `closed?` flag).  [`SourceObservations`] stores those claims in
//! a dense object × source layout; claims are optional because not every source
//! covers every object in every snapshot.

use relacc_model::Value;
use std::collections::HashMap;

/// Identifier of a data source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub usize);

/// Identifier of an object (e.g. a restaurant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub usize);

/// Claims of many sources about one attribute of many objects.
#[derive(Debug, Clone, Default)]
pub struct SourceObservations {
    /// Names of the sources (index = `SourceId`).
    pub source_names: Vec<String>,
    /// Names of the objects (index = `ObjectId`).
    pub object_names: Vec<String>,
    /// `claims[object][source]` — the value claimed by the source, if any.
    claims: Vec<Vec<Option<Value>>>,
}

impl SourceObservations {
    /// Create an empty observation matrix for the given sources and objects.
    pub fn new(source_names: Vec<String>, object_names: Vec<String>) -> Self {
        let claims = vec![vec![None; source_names.len()]; object_names.len()];
        SourceObservations {
            source_names,
            object_names,
            claims,
        }
    }

    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.source_names.len()
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.object_names.len()
    }

    /// Record a claim (overwrites any previous claim of the same source for the
    /// same object — later snapshots supersede earlier ones).
    pub fn record(&mut self, object: ObjectId, source: SourceId, value: Value) {
        self.claims[object.0][source.0] = Some(value);
    }

    /// The claim of `source` about `object`, if any.
    pub fn claim(&self, object: ObjectId, source: SourceId) -> Option<&Value> {
        self.claims[object.0][source.0].as_ref()
    }

    /// All claims about an object as `(source, value)` pairs.
    pub fn claims_for(&self, object: ObjectId) -> Vec<(SourceId, &Value)> {
        self.claims[object.0]
            .iter()
            .enumerate()
            .filter_map(|(s, v)| v.as_ref().map(|v| (SourceId(s), v)))
            .collect()
    }

    /// The distinct values claimed for an object, with the number of sources
    /// claiming each.
    pub fn value_votes(&self, object: ObjectId) -> Vec<(Value, usize)> {
        let mut votes: Vec<(Value, usize)> = Vec::new();
        for (_, v) in self.claims_for(object) {
            match votes.iter_mut().find(|(existing, _)| existing.same(v)) {
                Some((_, count)) => *count += 1,
                None => votes.push((v.clone(), 1)),
            }
        }
        votes
    }

    /// The fraction of objects on which two sources make the *same* claim,
    /// computed over the objects both cover.  Returns `None` when they share no
    /// objects.  Used by copy detection.
    pub fn agreement(&self, a: SourceId, b: SourceId) -> Option<f64> {
        let mut shared = 0usize;
        let mut agree = 0usize;
        for row in &self.claims {
            if let (Some(va), Some(vb)) = (&row[a.0], &row[b.0]) {
                shared += 1;
                if va.same(vb) {
                    agree += 1;
                }
            }
        }
        if shared == 0 {
            None
        } else {
            Some(agree as f64 / shared as f64)
        }
    }

    /// Per-source coverage: number of objects each source makes a claim about.
    pub fn coverage(&self) -> HashMap<SourceId, usize> {
        let mut cov = HashMap::new();
        for row in &self.claims {
            for (s, v) in row.iter().enumerate() {
                if v.is_some() {
                    *cov.entry(SourceId(s)).or_insert(0) += 1;
                }
            }
        }
        cov
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> SourceObservations {
        let mut o = SourceObservations::new(
            vec!["s0".into(), "s1".into(), "s2".into()],
            vec!["r0".into(), "r1".into()],
        );
        o.record(ObjectId(0), SourceId(0), Value::Bool(true));
        o.record(ObjectId(0), SourceId(1), Value::Bool(true));
        o.record(ObjectId(0), SourceId(2), Value::Bool(false));
        o.record(ObjectId(1), SourceId(0), Value::Bool(false));
        o.record(ObjectId(1), SourceId(1), Value::Bool(true));
        o
    }

    #[test]
    fn record_and_query() {
        let o = obs();
        assert_eq!(o.source_count(), 3);
        assert_eq!(o.object_count(), 2);
        assert_eq!(o.claim(ObjectId(0), SourceId(2)), Some(&Value::Bool(false)));
        assert_eq!(o.claim(ObjectId(1), SourceId(2)), None);
        assert_eq!(o.claims_for(ObjectId(1)).len(), 2);
        let votes = o.value_votes(ObjectId(0));
        assert!(votes.contains(&(Value::Bool(true), 2)));
        assert!(votes.contains(&(Value::Bool(false), 1)));
    }

    #[test]
    fn later_records_overwrite() {
        let mut o = obs();
        o.record(ObjectId(0), SourceId(2), Value::Bool(true));
        assert_eq!(o.claim(ObjectId(0), SourceId(2)), Some(&Value::Bool(true)));
    }

    #[test]
    fn agreement_and_coverage() {
        let o = obs();
        assert_eq!(o.agreement(SourceId(0), SourceId(1)), Some(0.5));
        assert_eq!(o.agreement(SourceId(1), SourceId(2)), Some(0.0));
        assert_eq!(o.agreement(SourceId(2), SourceId(2)), Some(1.0));
        let cov = o.coverage();
        assert_eq!(cov[&SourceId(0)], 2);
        assert_eq!(cov[&SourceId(2)], 1);
        // no shared objects
        let empty = SourceObservations::new(vec!["a".into(), "b".into()], vec!["x".into()]);
        assert_eq!(empty.agreement(SourceId(0), SourceId(1)), None);
    }
}
