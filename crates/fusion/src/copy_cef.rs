//! `copyCEF`: Bayesian truth discovery with source-accuracy estimation and
//! copy detection, after Dong, Berti-Équille and Srivastava (PVLDB 2009).
//!
//! This is a clean-room reimplementation of the model the paper compares
//! against in Exp-5 (Table 4).  It iterates three estimates to a fixpoint:
//!
//! 1. **value probabilities** — for every object, each claimed value gets a
//!    vote score `Σ_s w(s) · ln( n·A(s) / (1 − A(s)) )` over the sources `s`
//!    claiming it (`n` = number of wrong values in the domain), normalized with
//!    a soft-max into a probability;
//! 2. **copy detection** — a source whose agreement with a more accurate
//!    source significantly exceeds what their accuracies explain is considered
//!    a (partial) copier and its votes are discounted by `1 − copy probability`;
//! 3. **source accuracy** — the mean probability of the values a source claims.
//!
//! The per-value posteriors can be fed into the preference model of
//! `relacc-topk` ("TopKCT (preference derived by copyCEF)" in Table 4).

use crate::observations::{ObjectId, SourceId, SourceObservations};
use relacc_model::Value;
use std::collections::HashMap;

/// Tuning knobs of the iterative estimation.
#[derive(Debug, Clone)]
pub struct CopyCefConfig {
    /// Initial accuracy assumed for every source.
    pub initial_accuracy: f64,
    /// Number of wrong values assumed per object domain (`n` in the vote
    /// score); for Boolean attributes this is 1.
    pub false_value_count: usize,
    /// Maximum number of estimation iterations.
    pub max_iterations: usize,
    /// Stop when the largest accuracy change falls below this threshold.
    pub convergence_epsilon: f64,
    /// Agreement in excess of the independence expectation needed before a
    /// source pair is considered a copy relationship.
    pub copy_margin: f64,
}

impl Default for CopyCefConfig {
    fn default() -> Self {
        CopyCefConfig {
            initial_accuracy: 0.8,
            false_value_count: 1,
            max_iterations: 20,
            convergence_epsilon: 1e-4,
            copy_margin: 0.05,
        }
    }
}

/// The output of `copyCEF`.
#[derive(Debug, Clone)]
pub struct CopyCefResult {
    /// Per object: the most probable value (None when no source covers it).
    pub truths: Vec<(ObjectId, Option<Value>)>,
    /// Per object: probability of every claimed value.
    pub value_probabilities: Vec<HashMap<Value, f64>>,
    /// Final estimated accuracy of every source.
    pub source_accuracy: Vec<f64>,
    /// Detected copy relationships `(copier, original, probability)`.
    pub copy_pairs: Vec<(SourceId, SourceId, f64)>,
    /// Number of iterations actually performed.
    pub iterations: usize,
}

impl CopyCefResult {
    /// The probability assigned to `value` for `object` (0.0 if never claimed).
    pub fn probability(&self, object: ObjectId, value: &Value) -> f64 {
        self.value_probabilities[object.0]
            .iter()
            .find(|(v, _)| v.same(value))
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }
}

fn clamp_accuracy(a: f64) -> f64 {
    a.clamp(0.01, 0.99)
}

/// Run the iterative copyCEF estimation.
// index loops intentionally range over ObjectId / SourceId ordinals
#[allow(clippy::needless_range_loop)]
pub fn copy_cef(obs: &SourceObservations, config: &CopyCefConfig) -> CopyCefResult {
    let n_sources = obs.source_count();
    let n_objects = obs.object_count();
    let n_false = config.false_value_count.max(1) as f64;

    let mut accuracy = vec![clamp_accuracy(config.initial_accuracy); n_sources];
    let mut independence = vec![1.0f64; n_sources];
    let mut value_probabilities: Vec<HashMap<Value, f64>> = vec![HashMap::new(); n_objects];
    let mut copy_pairs: Vec<(SourceId, SourceId, f64)> = Vec::new();
    let mut iterations = 0usize;

    for _ in 0..config.max_iterations {
        iterations += 1;

        // (1) value probabilities per object.
        for o in 0..n_objects {
            let object = ObjectId(o);
            let claims = obs.claims_for(object);
            let mut scores: Vec<(Value, f64)> = Vec::new();
            for (s, v) in &claims {
                let a = clamp_accuracy(accuracy[s.0]);
                let vote = independence[s.0] * (n_false * a / (1.0 - a)).ln();
                match scores.iter_mut().find(|(existing, _)| existing.same(v)) {
                    Some((_, score)) => *score += vote,
                    None => scores.push(((*v).clone(), vote)),
                }
            }
            let probs: HashMap<Value, f64> = if scores.is_empty() {
                HashMap::new()
            } else {
                let max = scores
                    .iter()
                    .map(|(_, s)| *s)
                    .fold(f64::NEG_INFINITY, f64::max);
                let denom: f64 = scores.iter().map(|(_, s)| (s - max).exp()).sum();
                scores
                    .into_iter()
                    .map(|(v, s)| (v, (s - max).exp() / denom))
                    .collect()
            };
            value_probabilities[o] = probs;
        }

        // (2) copy detection and independence weights.
        //
        // Following Dong et al., copying is evidenced by *shared mistakes*:
        // two independent sources rarely agree on a value that is probably
        // false, whereas a copier replicates its original's errors.  Agreement
        // on probably-true values carries no signal (everyone gets those
        // right), which is what keeps honest high-accuracy sources from being
        // flagged as copiers on skewed domains.
        copy_pairs.clear();
        let mut new_independence = vec![1.0f64; n_sources];
        for s1 in 0..n_sources {
            for s2 in 0..n_sources {
                if s1 == s2 {
                    continue;
                }
                // s1 suspected of copying s2: only when s2 is at least as accurate.
                if accuracy[s2] < accuracy[s1] {
                    continue;
                }
                let mut shared = 0usize;
                let mut shared_mistakes = 0usize;
                for o in 0..n_objects {
                    let (Some(v1), Some(v2)) = (
                        obs.claim(ObjectId(o), SourceId(s1)),
                        obs.claim(ObjectId(o), SourceId(s2)),
                    ) else {
                        continue;
                    };
                    shared += 1;
                    if v1.same(v2) {
                        let p = value_probabilities[o]
                            .iter()
                            .find(|(k, _)| k.same(v1))
                            .map(|(_, p)| *p)
                            .unwrap_or(0.0);
                        if p < 0.5 {
                            shared_mistakes += 1;
                        }
                    }
                }
                if shared == 0 {
                    continue;
                }
                let (a1, a2) = (clamp_accuracy(accuracy[s1]), clamp_accuracy(accuracy[s2]));
                // Signal 1: shared mistakes (agreement on probably-false values).
                let observed_mistakes = shared_mistakes as f64 / shared as f64;
                let expected_mistakes = (1.0 - a1) * (1.0 - a2) / n_false;
                let mistake_signal = if observed_mistakes > expected_mistakes + config.copy_margin {
                    ((observed_mistakes - expected_mistakes) / (1.0 - expected_mistakes))
                        .clamp(0.0, 1.0)
                } else {
                    0.0
                };
                // Signal 2: (near-)verbatim agreement far above what independent
                // sources of these accuracies could produce.  This catches exact
                // copiers even when the majority vote currently believes their
                // shared values (the bootstrap problem of signal 1).
                let full_agreement = obs.agreement(SourceId(s1), SourceId(s2)).unwrap_or(0.0);
                let expected_agreement = a1 * a2 + (1.0 - a1) * (1.0 - a2) / n_false;
                let verbatim_signal = if full_agreement >= 0.97
                    && full_agreement > expected_agreement + config.copy_margin
                {
                    ((full_agreement - expected_agreement) / (1.0 - expected_agreement))
                        .clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let copy_prob = mistake_signal.max(verbatim_signal);
                if copy_prob > 0.0 {
                    copy_pairs.push((SourceId(s1), SourceId(s2), copy_prob));
                    new_independence[s1] = new_independence[s1].min(1.0 - copy_prob);
                }
            }
        }
        independence = new_independence;

        // (3) source accuracies.
        let mut max_delta = 0.0f64;
        for s in 0..n_sources {
            let mut total = 0.0f64;
            let mut count = 0usize;
            for o in 0..n_objects {
                if let Some(v) = obs.claim(ObjectId(o), SourceId(s)) {
                    let p = value_probabilities[o]
                        .iter()
                        .find(|(k, _)| k.same(v))
                        .map(|(_, p)| *p)
                        .unwrap_or(0.0);
                    total += p;
                    count += 1;
                }
            }
            if count > 0 {
                let new_accuracy = clamp_accuracy(total / count as f64);
                max_delta = max_delta.max((new_accuracy - accuracy[s]).abs());
                accuracy[s] = new_accuracy;
            }
        }
        if max_delta < config.convergence_epsilon {
            break;
        }
    }

    let truths = (0..n_objects)
        .map(|o| {
            let best = value_probabilities[o]
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(v, _)| v.clone());
            (ObjectId(o), best)
        })
        .collect();

    CopyCefResult {
        truths,
        value_probabilities,
        source_accuracy: accuracy,
        copy_pairs,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voting::voting_over_sources;

    /// Three honest sources with different accuracy plus two copiers of the
    /// worst source.  Majority voting is fooled by the copier block; copyCEF
    /// should discount the copies and recover more truths.
    fn copier_scenario() -> (SourceObservations, Vec<Value>) {
        let n_objects = 60usize;
        let sources = vec![
            "good".to_string(),
            "ok".to_string(),
            "bad".to_string(),
            "copy1".to_string(),
            "copy2".to_string(),
        ];
        let objects = (0..n_objects).map(|i| format!("o{i}")).collect();
        let mut obs = SourceObservations::new(sources, objects);
        let mut truth = Vec::with_capacity(n_objects);
        // deterministic pseudo-random error pattern
        let wrong = |i: usize, rate_num: usize, rate_den: usize| (i * 7 + 3) % rate_den < rate_num;
        for i in 0..n_objects {
            let t = Value::Bool(i % 2 == 0);
            truth.push(t.clone());
            let flip = |v: &Value| match v {
                Value::Bool(b) => Value::Bool(!b),
                other => other.clone(),
            };
            // good: 5% errors; ok: 20%; bad: 45% errors
            let good = if wrong(i, 1, 20) { flip(&t) } else { t.clone() };
            let ok = if wrong(i, 4, 20) { flip(&t) } else { t.clone() };
            let bad = if wrong(i, 9, 20) { flip(&t) } else { t.clone() };
            obs.record(ObjectId(i), SourceId(0), good);
            obs.record(ObjectId(i), SourceId(1), ok);
            obs.record(ObjectId(i), SourceId(2), bad.clone());
            obs.record(ObjectId(i), SourceId(3), bad.clone());
            obs.record(ObjectId(i), SourceId(4), bad);
        }
        (obs, truth)
    }

    fn correct_count(result: &[(ObjectId, Option<Value>)], truth: &[Value]) -> usize {
        result
            .iter()
            .filter(|(o, v)| v.as_ref().is_some_and(|v| v.same(&truth[o.0])))
            .count()
    }

    #[test]
    fn detects_copiers_and_beats_voting() {
        let (obs, truth) = copier_scenario();
        let result = copy_cef(&obs, &CopyCefConfig::default());
        let vote = voting_over_sources(&obs);
        let cef_correct = correct_count(&result.truths, &truth);
        let vote_correct = correct_count(&vote, &truth);
        assert!(
            cef_correct > vote_correct,
            "copyCEF {cef_correct} should beat voting {vote_correct}"
        );
        // the copiers must show up in the detected copy relationships
        assert!(result
            .copy_pairs
            .iter()
            .any(|(copier, original, _)| (copier.0 >= 3) && (original.0 >= 2)));
        // the good source should end up more accurate than the bad one
        assert!(result.source_accuracy[0] > result.source_accuracy[2]);
        assert!(result.iterations >= 2);
    }

    #[test]
    fn probabilities_are_normalized() {
        let (obs, _) = copier_scenario();
        let result = copy_cef(&obs, &CopyCefConfig::default());
        for probs in &result.value_probabilities {
            let sum: f64 = probs.values().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(probs.values().all(|p| (0.0..=1.0).contains(p)));
        }
        let p = result.probability(ObjectId(0), &Value::Bool(true));
        let q = result.probability(ObjectId(0), &Value::Bool(false));
        assert!((p + q - 1.0).abs() < 1e-9);
        assert_eq!(result.probability(ObjectId(0), &Value::text("never")), 0.0);
    }

    #[test]
    fn empty_observations_produce_empty_truths() {
        let obs = SourceObservations::new(vec!["a".into()], vec!["x".into()]);
        let result = copy_cef(&obs, &CopyCefConfig::default());
        assert_eq!(result.truths.len(), 1);
        assert_eq!(result.truths[0].1, None);
    }
}
