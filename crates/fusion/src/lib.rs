//! # relacc-fusion
//!
//! Truth-discovery baselines and evaluation metrics for the experimental
//! comparison of Section 7 (Exp-5, Table 4) of *"Determining the Relative
//! Accuracy of Attributes"* (SIGMOD 2013):
//!
//! * [`voting_target`] / [`voting_over_sources`] — majority voting;
//! * [`mod@deduce_order`] — conflict resolution from currency constraints and
//!   constant CFDs (Fan et al., ICDE 2013);
//! * [`mod@copy_cef`] — Bayesian source-accuracy estimation with copy detection
//!   (Dong et al., PVLDB 2009), whose posteriors can seed the preference model
//!   of `relacc-topk`;
//! * [`metrics`] — precision/recall/F1, attribute accuracy and exact-match
//!   rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod copy_cef;
pub mod deduce_order;
pub mod metrics;
pub mod observations;
pub mod voting;

pub use copy_cef::{copy_cef, CopyCefConfig, CopyCefResult};
pub use deduce_order::{deduce_order, DeduceOrderResult};
pub use metrics::{attribute_accuracy, exact_match_rate, mean, precision_recall, PrecisionRecall};
pub use observations::{ObjectId, SourceId, SourceObservations};
pub use voting::{voting_over_sources, voting_target};
